"""Unit tests for the API server: CRUD, optimistic concurrency, watches,
finalizers, label selectors."""

import pytest

from repro.errors import (AlreadyExistsError, ConflictError,
                          InvalidObjectError, NotFoundError)
from repro.platform import (WATCH_CLOSED, EventType, Namespace,
                            PersistentVolumeClaim, Pod)
from tests.platform.conftest import make_namespace, make_pod, make_pvc


class TestCrud:
    def test_create_and_get(self, api):
        api.create(make_namespace("shop"))
        ns = api.get(Namespace, "shop")
        assert ns.meta.name == "shop"
        assert ns.meta.uid > 0
        assert ns.meta.resource_version > 0

    def test_get_returns_copy(self, api):
        api.create(make_namespace("shop"))
        first = api.get(Namespace, "shop")
        first.meta.labels["mutated"] = "yes"
        second = api.get(Namespace, "shop")
        assert "mutated" not in second.meta.labels

    def test_duplicate_create_rejected(self, api):
        api.create(make_namespace("shop"))
        with pytest.raises(AlreadyExistsError):
            api.create(make_namespace("shop"))

    def test_get_missing_raises(self, api):
        with pytest.raises(NotFoundError):
            api.get(Namespace, "ghost")
        assert api.try_get(Namespace, "ghost") is None

    def test_update_bumps_resource_version(self, api):
        api.create(make_namespace("shop"))
        ns = api.get(Namespace, "shop")
        rv = ns.meta.resource_version
        ns.meta.labels["k"] = "v"
        updated = api.update(ns)
        assert updated.meta.resource_version > rv

    def test_stale_update_conflicts(self, api):
        api.create(make_namespace("shop"))
        first = api.get(Namespace, "shop")
        second = api.get(Namespace, "shop")
        first.meta.labels["a"] = "1"
        api.update(first)
        second.meta.labels["b"] = "2"
        with pytest.raises(ConflictError):
            api.update(second)

    def test_delete_without_finalizers_is_immediate(self, api):
        api.create(make_namespace("shop"))
        api.delete(Namespace, "shop")
        assert api.try_get(Namespace, "shop") is None

    def test_validation_on_create(self, api):
        pvc = make_pvc("shop", "data", capacity=0)
        with pytest.raises(InvalidObjectError):
            api.create(pvc)

    def test_namespace_scoping_validation(self, api):
        pod = make_pod("", "p1")
        with pytest.raises(InvalidObjectError):
            api.create(pod)
        ns = make_namespace("x")
        ns.meta.namespace = "oops"
        with pytest.raises(InvalidObjectError):
            api.create(ns)

    def test_list_sorted_and_filtered(self, api):
        api.create(make_pvc("shop", "zeta"))
        api.create(make_pvc("shop", "alpha"))
        api.create(make_pvc("other", "beta"))
        names = [p.meta.name for p in
                 api.list(PersistentVolumeClaim, namespace="shop")]
        assert names == ["alpha", "zeta"]
        assert api.object_count(PersistentVolumeClaim) == 3

    def test_label_selector(self, api):
        tagged = make_namespace("a", labels={"backup": "yes"})
        api.create(tagged)
        api.create(make_namespace("b"))
        matches = api.list(Namespace, label_selector={"backup": "yes"})
        assert [m.meta.name for m in matches] == ["a"]


class TestWatch:
    def test_watch_receives_lifecycle_events(self, sim, api):
        stream = api.watch(Namespace)
        seen = []

        def watcher(sim):
            for _ in range(3):
                event = yield stream.next_event()
                seen.append((event.type, event.object.meta.name))

        sim.spawn(watcher(sim))
        api.create(make_namespace("shop"))
        ns = api.get(Namespace, "shop")
        ns.meta.labels["k"] = "v"
        api.update(ns)
        api.delete(Namespace, "shop")
        sim.run()
        assert seen == [
            (EventType.ADDED, "shop"),
            (EventType.MODIFIED, "shop"),
            (EventType.DELETED, "shop"),
        ]

    def test_watch_replays_existing_objects(self, sim, api):
        api.create(make_namespace("early"))
        stream = api.watch(Namespace)
        ok, event = stream.try_next()
        assert ok and event.type is EventType.ADDED
        assert event.object.meta.name == "early"

    def test_closed_watch_stops_delivering(self, sim, api):
        stream = api.watch(Namespace)
        stream.close()
        api.create(make_namespace("shop"))
        # only the closure sentinel remains readable; the create after
        # close was never delivered
        ok, event = stream.try_next()
        assert ok and event is WATCH_CLOSED
        assert len(stream) == 0

    def test_watch_event_object_is_snapshot(self, sim, api):
        stream = api.watch(Namespace)
        api.create(make_namespace("shop"))
        ns = api.get(Namespace, "shop")
        ns.meta.labels["later"] = "yes"
        api.update(ns)
        _ok, added = stream.try_next()
        assert "later" not in added.object.meta.labels


class TestFinalizers:
    def test_delete_with_finalizer_defers(self, sim, api):
        ns = make_namespace("shop")
        ns.meta.finalizers = ["backup.protect"]
        api.create(ns)
        api.delete(Namespace, "shop")
        still_there = api.get(Namespace, "shop")
        assert still_there.meta.deleting

    def test_remove_last_finalizer_completes_delete(self, sim, api):
        ns = make_namespace("shop")
        ns.meta.finalizers = ["backup.protect"]
        api.create(ns)
        api.delete(Namespace, "shop")
        api.remove_finalizer(Namespace, "shop", "", "backup.protect")
        assert api.try_get(Namespace, "shop") is None

    def test_remove_finalizer_before_delete_keeps_object(self, sim, api):
        ns = make_namespace("shop")
        ns.meta.finalizers = ["backup.protect"]
        api.create(ns)
        api.remove_finalizer(Namespace, "shop", "", "backup.protect")
        assert api.try_get(Namespace, "shop") is not None

    def test_delete_idempotent_while_finalizing(self, sim, api):
        ns = make_namespace("shop")
        ns.meta.finalizers = ["backup.protect"]
        api.create(ns)
        api.delete(Namespace, "shop")
        rv = api.get(Namespace, "shop").meta.resource_version
        api.delete(Namespace, "shop")  # second request is a no-op
        assert api.get(Namespace, "shop").meta.resource_version == rv
