"""Flight-recorder tests: ring semantics, snapshots, metric wiring."""

import json

import pytest

from repro.telemetry import FlightRecorder, MetricsRegistry, Telemetry


def _recorder(**kwargs):
    clock = {"now": 0.0}
    recorder = FlightRecorder(lambda: clock["now"], **kwargs)
    return clock, recorder


class TestRing:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            _recorder(capacity=0)

    def test_events_carry_time_and_monotonic_seq(self):
        clock, recorder = _recorder()
        first = recorder.record("fault", "link-partition", action="inject")
        clock["now"] = 0.5
        second = recorder.record("alert", "rpo", state="firing")
        assert (first.seq, first.time) == (1, 0.0)
        assert (second.seq, second.time) == (2, 0.5)
        assert first.attrs == {"action": "inject"}
        assert len(recorder) == 2

    def test_ring_evicts_oldest_and_counts_drops(self):
        _clock, recorder = _recorder(capacity=4)
        for index in range(6):
            recorder.record("tick", f"e{index}")
        assert len(recorder) == 4
        assert recorder.dropped == 2
        assert [event.name for event in recorder.events] == \
            ["e2", "e3", "e4", "e5"]
        # seq keeps counting across evictions
        assert recorder.events[-1].seq == 6

    def test_disabled_recorder_is_a_noop(self):
        _clock, recorder = _recorder()
        recorder.enabled = False
        assert recorder.record("tick", "ignored") is None
        assert len(recorder) == 0

    def test_queries(self):
        clock, recorder = _recorder()
        recorder.record("fault", "link-partition")
        clock["now"] = 0.1
        recorder.record("alert", "rpo")
        clock["now"] = 0.2
        recorder.record("alert", "suspended")
        assert [e.name for e in recorder.of_category("alert")] == \
            ["rpo", "suspended"]
        assert len(recorder.named("alert", "rpo")) == 1
        timeline = recorder.timeline()
        assert timeline == sorted(timeline)
        assert timeline[0][2].name == "link-partition"

    def test_event_rendering_is_deterministic(self):
        _clock, recorder = _recorder()
        event = recorder.record("pair", "p1", state="PSUE", event="suspend")
        # attrs render sorted by key regardless of insertion order
        assert event.detail() == "event=suspend state=PSUE"
        assert "pair" in str(event)
        assert event.as_dict()["attrs"] == {"state": "PSUE",
                                            "event": "suspend"}


class TestSnapshots:
    def test_snapshot_freezes_the_ring(self):
        clock, recorder = _recorder()
        recorder.record("fault", "crash")
        frozen = recorder.snapshot("invariant-silent-corruption")
        clock["now"] = 1.0
        recorder.record("fault", "later")
        assert len(frozen["events"]) == 1
        assert frozen["reason"] == "invariant-silent-corruption"
        assert frozen["time"] == 0.0
        assert recorder.snapshots == [frozen]

    def test_dump_dir_writes_slugged_json(self, tmp_path):
        _clock, recorder = _recorder()
        recorder.dump_dir = tmp_path / "flights"
        recorder.record("failover", "order-processing", step="start")
        recorder.snapshot("Failover: RECOVERED!")
        recorder.snapshot("second")
        names = sorted(p.name for p in (tmp_path / "flights").iterdir())
        assert names == ["flight-001-failover-recovered.json",
                         "flight-002-second.json"]
        loaded = json.loads((tmp_path / "flights" / names[0]).read_text())
        assert loaded["events"][0]["name"] == "order-processing"
        assert loaded["dropped"] == 0

    def test_snapshot_json_is_byte_deterministic(self, tmp_path):
        dumps = []
        for attempt in range(2):
            clock, recorder = _recorder()
            recorder.dump_dir = tmp_path / f"run{attempt}"
            recorder.record("fault", "link-partition", action="inject")
            clock["now"] = 0.25
            recorder.record("alert", "rpo", state="firing")
            recorder.snapshot("campaign")
            dumps.append(
                (recorder.dump_dir / "flight-001-campaign.json")
                .read_bytes())
        assert dumps[0] == dumps[1]


class TestMetricWiring:
    def test_category_counters_and_snapshot_counter(self):
        registry = MetricsRegistry()
        clock = {"now": 0.0}
        recorder = FlightRecorder(lambda: clock["now"], registry=registry)
        recorder.record("fault", "a")
        recorder.record("fault", "b")
        recorder.record("alert", "c")
        recorder.snapshot("why")
        assert registry.get("repro_flight_events_total",
                            category="fault").value == 2
        assert registry.get("repro_flight_events_total",
                            category="alert").value == 1
        assert registry.get("repro_flight_snapshots_total").value == 1

    def test_telemetry_owns_a_wired_recorder(self):
        clock = {"now": 3.0}
        telemetry = Telemetry(lambda: clock["now"])
        event = telemetry.recorder.record("array", "G370", event="fail")
        assert event.time == 3.0
        assert telemetry.registry.get("repro_flight_events_total",
                                      category="array").value == 1
