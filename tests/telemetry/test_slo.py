"""SLO rule engine tests: rule math, state-machine timing, wiring.

The state machines are exercised at exact instants through
``evaluate_once`` on a manually-clocked telemetry stub, so every
pending/firing/hysteresis edge is asserted at a known time; the
lifecycle tests then run the engine as a real simulation process.
"""

import pytest

from repro.simulation import Simulator
from repro.telemetry import (BurnRateRule, ConditionRule, LatencyRecorder,
                             LatencyPercentileRule, SloEngine, Telemetry,
                             standard_rules)
from tests.storage.conftest import build_two_site, fast_adc


class ManualSim:
    """A settable clock plus a telemetry bundle; no event loop."""

    def __init__(self):
        self.now = 0.0
        self.telemetry = Telemetry(lambda: self.now)


def _engine(rules, **kwargs):
    sim = ManualSim()
    return sim, SloEngine(sim, rules, **kwargs)


class TestRuleValidation:
    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            ConditionRule("r", lambda: False, for_seconds=-1.0)

    def test_burn_rate_parameters_validated(self):
        with pytest.raises(ValueError):
            BurnRateRule("r", lambda: 0.0, objective=-1.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", lambda: 0.0, objective=1.0, windows=())
        with pytest.raises(ValueError):
            BurnRateRule("r", lambda: 0.0, objective=1.0,
                         budget_fraction=0.0)

    def test_latency_rule_parameters_validated(self):
        source = LatencyRecorder("w")
        with pytest.raises(ValueError):
            LatencyPercentileRule("r", source, bound=0.0)
        with pytest.raises(ValueError):
            LatencyPercentileRule("r", source, bound=0.01, fraction=1.5)

    def test_engine_rejects_duplicate_rule_names(self):
        rules = [ConditionRule("same", lambda: False),
                 ConditionRule("same", lambda: True)]
        with pytest.raises(ValueError):
            _engine(rules)

    def test_engine_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            _engine([ConditionRule("r", lambda: False)], interval=0.0)

    def test_state_of_unknown_rule_raises(self):
        _sim, engine = _engine([ConditionRule("r", lambda: False)])
        with pytest.raises(KeyError):
            engine.state_of("absent")


class TestConditionStateMachine:
    def test_immediate_fire_and_resolve(self):
        flag = {"on": False}
        sim, engine = _engine([ConditionRule("cond", lambda: flag["on"])])
        engine.evaluate_once()
        assert engine.state_of("cond") == "ok"
        flag["on"] = True
        sim.now = 0.01
        engine.evaluate_once()
        assert engine.state_of("cond") == "firing"
        assert engine.firing_rules() == ["cond"]
        flag["on"] = False
        sim.now = 0.02
        engine.evaluate_once()
        assert engine.state_of("cond") == "ok"
        assert [(t.time, t.state) for t in engine.transitions] == \
            [(0.01, "firing"), (0.02, "resolved")]

    def test_transitions_land_in_registry_and_recorder(self):
        flag = {"on": True}
        sim, engine = _engine([ConditionRule("cond", lambda: flag["on"],
                                             severity="ticket")])
        engine.evaluate_once()
        flag["on"] = False
        sim.now = 0.01
        engine.evaluate_once()
        registry = sim.telemetry.registry
        assert registry.get("repro_alerts_total", rule="cond",
                            state="firing").value == 1
        assert registry.get("repro_alerts_total", rule="cond",
                            state="resolved").value == 1
        assert registry.get("repro_alert_firing", rule="cond").value == 0.0
        recorded = sim.telemetry.recorder.named("alert", "cond")
        assert [e.attrs["state"] for e in recorded] == \
            ["firing", "resolved"]
        assert all(e.attrs["severity"] == "ticket" for e in recorded)

    def test_for_seconds_gates_firing(self):
        flag = {"on": False}
        sim, engine = _engine([ConditionRule(
            "cond", lambda: flag["on"], for_seconds=0.05)])
        # a breach shorter than for_seconds never fires
        flag["on"] = True
        sim.now = 0.01
        engine.evaluate_once()
        assert engine.state_of("cond") == "pending"
        flag["on"] = False
        sim.now = 0.02
        engine.evaluate_once()
        assert engine.state_of("cond") == "ok"
        assert engine.transitions == []
        # a persistent breach fires once the pending delay elapses
        flag["on"] = True
        for step in range(3, 9):
            sim.now = step * 0.01
            engine.evaluate_once()
        assert engine.state_of("cond") == "firing"
        assert len(engine.transitions) == 1
        assert engine.transitions[0].time == pytest.approx(0.08)

    def test_clear_seconds_hysteresis(self):
        flag = {"on": True}
        sim, engine = _engine([ConditionRule(
            "cond", lambda: flag["on"], clear_seconds=0.05)])
        engine.evaluate_once()
        assert engine.state_of("cond") == "firing"
        # healthy evaluations inside the hysteresis window do not resolve
        flag["on"] = False
        for now in (0.10, 0.12):
            sim.now = now
            engine.evaluate_once()
        assert engine.state_of("cond") == "firing"
        # a flap back to breached resets the healthy clock
        flag["on"] = True
        sim.now = 0.14
        engine.evaluate_once()
        flag["on"] = False
        sim.now = 0.16
        engine.evaluate_once()
        assert engine.state_of("cond") == "firing"
        sim.now = 0.22
        engine.evaluate_once()
        assert engine.state_of("cond") == "ok"
        resolved = [t for t in engine.transitions if t.state == "resolved"]
        assert [t.time for t in resolved] == [pytest.approx(0.22)]


class TestBurnRateRule:
    """Multi-window semantics: every window must burn to breach."""

    def _rule(self, series):
        return BurnRateRule("rpo", lambda: series["value"], objective=0.05,
                            windows=((0.06, 1.0), (0.24, 1.0)),
                            budget_fraction=0.1)

    def test_healthy_series_never_breaches(self):
        series = {"value": 0.0}
        rule = self._rule(series)
        for step in range(30):
            breached, detail = rule.observe(step * 0.01)
            assert not breached
        assert "burn[0.06s]=0.00/1" in detail

    def test_short_window_alone_does_not_breach(self):
        """2 bad samples burn the 0.06s window (2/7 > 10%) but not the
        0.24s window (2/25 < 10%) — the long window suppresses blips."""
        series = {"value": 0.0}
        rule = self._rule(series)
        for step in range(24):
            assert not rule.observe(step * 0.01)[0]
        series["value"] = 0.2
        assert not rule.observe(0.24)[0]
        breached, detail = rule.observe(0.25)
        assert not breached
        assert "burn[0.06s]=2.86/1" in detail

    def test_both_windows_burning_breaches(self):
        """The third consecutive bad sample tips the long window past
        its budget (3/25 > 10%) and the rule breaches."""
        series = {"value": 0.0}
        rule = self._rule(series)
        for step in range(24):
            rule.observe(step * 0.01)
        series["value"] = 0.2
        rule.observe(0.24)
        rule.observe(0.25)
        breached, detail = rule.observe(0.26)
        assert breached
        assert "value=0.2" in detail

    def test_samples_pruned_past_longest_window(self):
        series = {"value": 0.0}
        rule = self._rule(series)
        for step in range(100):
            rule.observe(step * 0.01)
        assert len(rule._samples) <= 25


class TestLatencyPercentileRule:
    def test_no_samples_is_healthy(self):
        rule = LatencyPercentileRule("p99", LatencyRecorder("w"),
                                     bound=0.005)
        assert rule.observe(0.0) == (False, "no samples in window")

    def test_breaches_when_percentile_exceeds_bound(self):
        source = LatencyRecorder("w")
        rule = LatencyPercentileRule("p99", source, bound=0.005)
        for _ in range(20):
            source.record(0.001)
        assert not rule.observe(0.01)[0]
        for _ in range(20):
            source.record(0.02)
        breached, detail = rule.observe(0.02)
        assert breached
        assert detail.startswith("p99=")

    def test_cursor_consumes_each_sample_once(self):
        source = LatencyRecorder("w")
        rule = LatencyPercentileRule("p99", source, bound=0.005)
        source.record(0.001)
        assert "n=1" in rule.observe(0.01)[1]
        # re-observing without new samples must not double-count
        assert "n=1" in rule.observe(0.02)[1]

    def test_window_prunes_old_samples(self):
        source = LatencyRecorder("w")
        rule = LatencyPercentileRule("p99", source, bound=0.005,
                                     window=0.25)
        source.record(0.02)
        assert rule.observe(0.0)[0]
        assert rule.observe(0.5) == (False, "no samples in window")


class TestEngineAsProcess:
    def test_engine_runs_and_fires_deterministically(self):
        sim = Simulator(seed=5)
        flag = {"on": False}

        def flipper(sim):
            yield sim.timeout(0.05)
            flag["on"] = True
            yield sim.timeout(0.05)
            flag["on"] = False

        sim.spawn(flipper(sim), name="flipper")
        engine = SloEngine(sim, [ConditionRule("cond",
                                               lambda: flag["on"])],
                           interval=0.01).start()
        sim.run(until=0.2)
        engine.stop()
        states = [t.state for t in engine.transitions]
        assert states == ["firing", "resolved"]
        fired, resolved = engine.transitions
        assert 0.05 <= fired.time <= 0.07
        assert 0.10 <= resolved.time <= 0.12
        assert engine.evaluations >= 18
        rendering = engine.render()
        assert "cond" in rendering
        assert "transitions:" in rendering

    def test_start_is_idempotent(self):
        sim = Simulator(seed=6)
        engine = SloEngine(sim, [ConditionRule("cond", lambda: False)])
        assert engine.start() is engine
        first = engine._process
        engine.start()
        assert engine._process is first


class TestStandardRules:
    def test_rule_set_against_live_deployment(self):
        sim = Simulator(seed=31)
        site = build_two_site(sim, adc=fast_adc())
        main_jnl = site.main.create_journal(site.main_pool_id, 1000)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 1000)
        group = site.main.create_journal_group(
            "cg", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        rules = standard_rules(site.main, group)
        assert [rule.name for rule in rules] == \
            ["host-write-p99", "rpo-journal-lag", "replication-suspended"]
        engine = SloEngine(sim, rules).start()
        sim.run(until=0.3)
        engine.stop()
        # a healthy, idle deployment never alerts
        assert engine.transitions == []
        assert engine.firing_rules() == []

    def test_coordinator_adds_in_doubt_rule(self):
        class FakeCoordinator:
            in_doubt = {}

        sim = Simulator(seed=32)
        site = build_two_site(sim, adc=fast_adc())
        main_jnl = site.main.create_journal(site.main_pool_id, 1000)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 1000)
        group = site.main.create_journal_group(
            "cg", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        rules = standard_rules(site.main, group, FakeCoordinator())
        assert rules[-1].name == "in-doubt-transactions"
