"""Tests for the periodic telemetry probes (journal lag, pair states,
snapshot age) under normal replication, suspension and resync."""

import pytest

from repro.simulation import Simulator
from repro.telemetry import ArrayProbe, start_probes
from tests.storage.conftest import build_two_site, fast_adc, run


def _paired_site(sim, adc=None, journal_entries=10_000):
    site = build_two_site(sim, adc=adc or fast_adc())
    pvol = site.main.create_volume(site.main_pool_id, 64)
    svol = site.backup.create_volume(site.backup_pool_id, 64)
    main_jnl = site.main.create_journal(site.main_pool_id, journal_entries)
    backup_jnl = site.backup.create_journal(site.backup_pool_id,
                                            journal_entries)
    site.main.create_journal_group("jg", main_jnl.journal_id, site.backup,
                                   backup_jnl.journal_id, site.link)
    site.main.create_async_pair("pair", "jg", pvol.volume_id, site.backup,
                                svol.volume_id)
    return site, pvol, svol


class TestEntryLagSampling:
    def test_lag_gauges_reflect_unshipped_entries(self):
        sim = Simulator(seed=31)
        # transfer never runs inside the test window: lag accumulates
        site, pvol, _svol = _paired_site(
            sim, adc=fast_adc(transfer_interval=60.0))
        probe = ArrayProbe(sim, site.main)

        def writer(sim):
            for i in range(7):
                yield from site.main.host_write(pvol.volume_id, i, b"x")

        run(sim, writer(sim))
        probe.sample_once()
        registry = sim.telemetry.registry
        assert registry.get("repro_journal_entry_lag",
                            group="jg").value == 7
        assert registry.get("repro_journal_byte_lag_bytes",
                            group="jg").value > 0
        assert registry.get("repro_journal_oldest_entry_age_seconds",
                            group="jg").value > 0
        assert registry.get("repro_journal_suspended",
                            group="jg").value == 0

    def test_periodic_process_samples_on_its_own(self):
        sim = Simulator(seed=32)
        site, pvol, _svol = _paired_site(sim)
        probes = start_probes(sim, [site.main, site.backup],
                              interval=0.01)
        assert len(probes) == 2
        run(sim, site.main.host_write(pvol.volume_id, 0, b"x"))
        sim.run(until=sim.now + 0.1)
        registry = sim.telemetry.registry
        samples = registry.get("repro_journal_entry_lag", group="jg")
        assert len(samples) >= 5  # ~10 sampling periods elapsed
        # converged system: the latest sample shows zero lag
        assert samples.value == 0

    def test_backup_array_does_not_duplicate_group_series(self):
        """Journal groups register on both arrays; only the journal
        owner (the main side) may sample, else series double-write."""
        sim = Simulator(seed=33)
        site, _pvol, _svol = _paired_site(sim)
        backup_probe = ArrayProbe(sim, site.backup)
        backup_probe.sample_once()
        registry = sim.telemetry.registry
        lag = registry.get("repro_journal_entry_lag", group="jg")
        assert lag is None or len(lag) == 0

    def test_interval_must_be_positive(self):
        sim = Simulator(seed=34)
        site, _pvol, _svol = _paired_site(sim)
        with pytest.raises(ValueError):
            ArrayProbe(sim, site.main, interval=0)


class TestSuspensionAndResync:
    def test_suspended_gauge_and_transition_counters(self):
        sim = Simulator(seed=35)
        site, pvol, _svol = _paired_site(sim)
        probe = ArrayProbe(sim, site.main)
        sim.run(until=sim.now + 0.5)  # initial copy settles into PAIR
        probe.sample_once()
        group = site.main.journal_groups["jg"]
        registry = sim.telemetry.registry
        assert registry.get("repro_journal_suspended",
                            group="jg").value == 0

        group.split()
        probe.sample_once()
        assert registry.get("repro_journal_suspended",
                            group="jg").value == 1
        split = registry.get("repro_pair_state_transitions_total",
                             engine="jg", pair="pair",
                             transition="PAIR->PSUS")
        assert split is not None and split.value == 1

        run(sim, group.resync())
        sim.run(until=sim.now + 0.5)
        probe.sample_once()
        assert registry.get("repro_journal_suspended",
                            group="jg").value == 0
        resynced = registry.get("repro_pair_state_transitions_total",
                                engine="jg", pair="pair",
                                transition="PSUS->PAIR")
        assert resynced is not None and resynced.value == 1

    def test_writes_during_split_keep_lag_visible(self):
        sim = Simulator(seed=36)
        site, pvol, _svol = _paired_site(sim)
        probe = ArrayProbe(sim, site.main)
        sim.run(until=sim.now + 0.5)
        group = site.main.journal_groups["jg"]
        group.split()
        run(sim, site.main.host_write(pvol.volume_id, 1, b"during"))
        probe.sample_once()
        registry = sim.telemetry.registry
        # a split pair journals nothing: entry lag stays 0 while the
        # suspension gauge explains why the backup is falling behind
        assert registry.get("repro_journal_entry_lag",
                            group="jg").value == 0
        assert registry.get("repro_journal_suspended",
                            group="jg").value == 1


class TestSnapshotAge:
    def test_snapshot_group_age_sampled(self):
        sim = Simulator(seed=37)
        site, _pvol, svol = _paired_site(sim)
        sim.run(until=sim.now + 0.5)
        group_proc = sim.spawn(site.backup.create_snapshot_group(
            "snap-g", [svol.volume_id], quiesce=False))
        sim.run_until_complete(group_proc)
        sim.run(until=sim.now + 0.25)
        probe = ArrayProbe(sim, site.backup)
        probe.sample_once()
        age = sim.telemetry.registry.get(
            "repro_snapshot_age_seconds", array=site.backup.serial,
            group="snap-g")
        assert age is not None
        assert age.value == pytest.approx(0.25, abs=0.05)

    def test_samples_taken_counter(self):
        sim = Simulator(seed=38)
        site, _pvol, _svol = _paired_site(sim)
        probe = ArrayProbe(sim, site.main)
        probe.sample_once()
        probe.sample_once()
        assert probe.samples_taken == 2
