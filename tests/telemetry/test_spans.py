"""Span tracing tests: unit-level tracer behaviour and the end-to-end
causal integrity of the replication write path.

The acceptance property for the telemetry subsystem lives here: every
``restore-apply`` span at the backup site is causally linked to the
host-write (or initial-copy/resync) span that produced the data, and
the consistency group's apply order can be read off the spans alone.
"""

import pytest

from repro.simulation import Simulator
from repro.telemetry import (Tracer, chrome_trace, replication_lag_report,
                             stage_breakdown)
from tests.storage.conftest import build_two_site, fast_adc, run


class TestTracerUnit:
    def _tracer(self):
        clock = {"now": 0.0}
        return clock, Tracer(clock=lambda: clock["now"])

    def test_parent_child_linkage(self):
        clock, tracer = self._tracer()
        root = tracer.start("root")
        child = tracer.start("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert tracer.children(root) == [child]
        assert list(tracer.roots()) == [root]

    def test_raw_context_linkage(self):
        """The form that rides inside a JournalEntry across the hop."""
        clock, tracer = self._tracer()
        origin = tracer.start("host-write")
        remote = tracer.start("restore-apply", trace_id=origin.trace_id,
                              parent_id=origin.span_id)
        assert remote.trace_id == origin.trace_id
        assert tracer.by_id(remote.parent_id) is origin

    def test_finish_records_duration_and_attrs(self):
        clock, tracer = self._tracer()
        span = tracer.start("op", volume=3)
        clock["now"] = 0.25
        tracer.finish(span, status="ok", applied=True)
        assert span.duration == pytest.approx(0.25)
        assert span.attrs == {"volume": 3, "applied": True}
        with pytest.raises(ValueError):
            tracer.finish(span)

    def test_ring_cap_evicts_oldest(self):
        clock = {"now": 0.0}
        tracer = Tracer(clock=lambda: clock["now"], max_spans=3)
        spans = [tracer.start(f"s{i}") for i in range(5)]
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.by_id(spans[0].span_id) is None
        assert tracer.by_id(spans[4].span_id) is spans[4]

    def test_deterministic_ids(self):
        _clock, tracer = self._tracer()
        first = tracer.start("a")
        second = tracer.start("b")
        assert (first.trace_id, first.span_id) == ("t0001", "s000001")
        assert (second.trace_id, second.span_id) == ("t0002", "s000002")


class TestStageBreakdownWeighting:
    """Batch spans carrying a ``writes`` attribute weigh in as that
    many units, so breakdown counts line up with write counters."""

    def _tracer(self):
        clock = {"now": 0.0}
        return clock, Tracer(clock=lambda: clock["now"])

    def _finish_at(self, clock, tracer, span, end):
        clock["now"] = end
        tracer.finish(span)

    def test_writes_attr_weights_count_and_mean(self):
        clock, tracer = self._tracer()
        # a 10-write batch taking 10ms and a 1-write batch taking 1ms
        big = tracer.start("host-write-batch", writes=10)
        self._finish_at(clock, tracer, big, 0.010)
        clock["now"] = 0.010
        small = tracer.start("host-write-batch", writes=1)
        self._finish_at(clock, tracer, small, 0.011)
        stats = {s.name: s for s in stage_breakdown(tracer)}
        batch = stats["host-write-batch"]
        assert batch.count == 11  # writes, not batches
        # the mean a *write* experienced: (10*10ms + 1*1ms) / 11
        assert batch.mean == pytest.approx(0.101 / 11)
        assert batch.maximum == pytest.approx(0.010)

    def test_spans_without_writes_attr_count_once(self):
        clock, tracer = self._tracer()
        span = tracer.start("transfer-batch", entries=50)
        self._finish_at(clock, tracer, span, 0.002)
        stats = {s.name: s for s in stage_breakdown(tracer)}
        assert stats["transfer-batch"].count == 1

    def test_non_positive_or_non_int_writes_ignored(self):
        clock, tracer = self._tracer()
        for bogus in (0, -3, "many", 2.5):
            span = tracer.start("host-write-batch", writes=bogus)
            self._finish_at(clock, tracer, span, clock["now"] + 0.001)
        assert {s.name: s for s in stage_breakdown(tracer)}[
            "host-write-batch"].count == 4


class TestChromeTrace:
    def _tracer(self):
        clock = {"now": 0.0}
        return clock, Tracer(clock=lambda: clock["now"])

    def test_exports_complete_events_in_microseconds(self):
        clock, tracer = self._tracer()
        root = tracer.start("host-write", volume=3)
        clock["now"] = 0.002
        child = tracer.start("restore-apply", parent=root)
        clock["now"] = 0.005
        tracer.finish(child, status="ok")
        tracer.finish(root)
        unfinished = tracer.start("dangling")
        document = chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 2  # the unfinished span is excluded
        assert unfinished.name not in [e["name"] for e in events]
        by_name = {event["name"]: event for event in events}
        write = by_name["host-write"]
        assert write["ph"] == "X"
        assert write["ts"] == pytest.approx(0.0)
        assert write["dur"] == pytest.approx(5000.0)
        assert write["tid"] == root.trace_id
        assert write["args"]["volume"] == 3
        apply_event = by_name["restore-apply"]
        assert apply_event["ts"] == pytest.approx(2000.0)
        assert apply_event["args"]["parent_id"] == root.span_id

    def test_document_is_json_serialisable(self):
        import json
        clock, tracer = self._tracer()
        tracer.finish(tracer.start("op", flag=True))
        encoded = json.dumps(chrome_trace(tracer), sort_keys=True)
        assert json.loads(encoded)["traceEvents"][0]["name"] == "op"


def _build_cg(sim, volumes=2, blocks=64):
    """Two-site system with one consistency group over ``volumes`` pairs.

    Volumes are empty at pairing time, so every journal entry — and
    therefore every restore-apply span — originates from a host write.
    """
    site = build_two_site(sim, adc=fast_adc())
    main_jnl = site.main.create_journal(site.main_pool_id, 10_000)
    backup_jnl = site.backup.create_journal(site.backup_pool_id, 10_000)
    site.main.create_journal_group("cg", main_jnl.journal_id, site.backup,
                                   backup_jnl.journal_id, site.link)
    pairs = []
    for index in range(volumes):
        pvol = site.main.create_volume(site.main_pool_id, blocks)
        svol = site.backup.create_volume(site.backup_pool_id, blocks)
        site.main.create_async_pair(f"pair-{index}", "cg", pvol.volume_id,
                                    site.backup, svol.volume_id)
        pairs.append((pvol, svol))
    return site, pairs


class TestWritePathCausality:
    """The tentpole acceptance test: RPO and CG ordering from spans alone."""

    def _run_interleaved_writes(self, sim, site, pairs, writes=30):
        def writer(sim):
            for i in range(writes):
                pvol, _svol = pairs[i % len(pairs)]
                yield from site.main.host_write(pvol.volume_id, i % 16,
                                                b"w%d" % i)

        run(sim, writer(sim))
        sim.run(until=sim.now + 1.0)  # converge transfer + restore

    def test_every_restore_apply_links_to_a_host_write(self):
        sim = Simulator(seed=21)
        site, pairs = _build_cg(sim)
        self._run_interleaved_writes(sim, site, pairs)
        tracer = sim.telemetry.tracer
        applies = [s for s in tracer.named("restore-apply") if s.finished]
        writes = {s.span_id: s for s in tracer.named("host-write")}
        assert applies, "no restore-apply spans were recorded"
        for span in applies:
            assert span.parent_id is not None, \
                f"restore-apply {span.span_id} has no causal parent"
            parent = tracer.by_id(span.parent_id)
            assert parent is not None
            assert parent.name == "host-write"
            assert parent.trace_id == span.trace_id
            assert parent.span_id in writes
            # the apply happened after the host ack, on the backup array
            assert span.start >= parent.end
            assert span.attrs["applied"] is True

    def test_cg_apply_order_matches_host_ack_order(self):
        """Reading only spans, the consistency group applies updates in
        exactly the order the main site acknowledged them."""
        sim = Simulator(seed=22)
        site, pairs = _build_cg(sim)
        self._run_interleaved_writes(sim, site, pairs, writes=40)
        tracer = sim.telemetry.tracer
        applies = [s for s in tracer.named("restore-apply")
                   if s.finished and s.attrs.get("applied")]
        assert len(applies) == 40
        ack_seqs = []
        for span in applies:  # tracer stores spans in creation order
            parent = tracer.by_id(span.parent_id)
            ack_seqs.append(parent.attrs["ack_seq"])
        assert ack_seqs == sorted(ack_seqs)
        assert len(set(ack_seqs)) == len(ack_seqs)

    def test_replication_lag_report_bounds_rpo(self):
        sim = Simulator(seed=23)
        site, pairs = _build_cg(sim)
        self._run_interleaved_writes(sim, site, pairs)
        report = replication_lag_report(sim.telemetry.tracer)
        assert report.unapplied == 0  # everything converged
        assert report.applied == 30
        assert 0.0 < report.worst_lag < 1.0
        assert report.mean_lag <= report.worst_lag

    def test_transfer_batch_spans_account_for_all_entries(self):
        sim = Simulator(seed=24)
        site, pairs = _build_cg(sim)
        self._run_interleaved_writes(sim, site, pairs)
        tracer = sim.telemetry.tracer
        batches = [s for s in tracer.named("transfer-batch")
                   if s.finished and s.status == "ok"]
        assert batches
        assert sum(s.attrs["entries"] for s in batches) == 30
        breakdown = {s.name: s for s in stage_breakdown(tracer)}
        assert breakdown["transfer-batch"].count == len(batches)
        # every batch pays at least the link latency
        assert breakdown["transfer-batch"].mean >= site.link.latency

    def test_initial_copy_entries_parent_to_initial_copy_span(self):
        """Pre-existing data keeps the causal invariant total: its
        restore-applies parent to the initial-copy span, not a write."""
        sim = Simulator(seed=25)
        site = build_two_site(sim, adc=fast_adc())
        pvol = site.main.create_volume(site.main_pool_id, 64)
        for block in range(5):
            run(sim, site.main.host_write(pvol.volume_id, block, b"pre"))
        svol = site.backup.create_volume(site.backup_pool_id, 64)
        main_jnl = site.main.create_journal(site.main_pool_id, 1000)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 1000)
        site.main.create_journal_group("jg", main_jnl.journal_id,
                                       site.backup, backup_jnl.journal_id,
                                       site.link)
        site.main.create_async_pair("pair", "jg", pvol.volume_id,
                                    site.backup, svol.volume_id)
        sim.run(until=sim.now + 1.0)
        tracer = sim.telemetry.tracer
        copies = tracer.named("initial-copy")
        assert len(copies) == 1
        applies = [s for s in tracer.named("restore-apply") if s.finished]
        assert len(applies) == 5
        for span in applies:
            assert span.trace_id == copies[0].trace_id
            assert tracer.by_id(span.parent_id) is copies[0]
