"""Unit tests for the telemetry instruments."""

import pytest

from repro.telemetry import (Counter, Gauge, Histogram, LatencyRecorder,
                             percentile, percentile_sorted)


class TestPercentile:
    def test_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_sorted_variant_matches(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        ordered = sorted(samples)
        for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert percentile(samples, fraction) == \
                percentile_sorted(ordered, fraction)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestLatencyRecorder:
    def test_summary_matches_exact_percentiles(self):
        recorder = LatencyRecorder("w")
        samples = [(i * 7919 % 100) / 1000.0 for i in range(100)]
        for sample in samples:
            recorder.record(sample)
        summary = recorder.summary()
        assert summary.count == 100
        assert summary.p50 == percentile(samples, 0.50)
        assert summary.p95 == percentile(samples, 0.95)
        assert summary.p99 == percentile(samples, 0.99)
        assert summary.maximum == max(samples)

    def test_merge_combines_samples(self):
        a = LatencyRecorder("a")
        b = LatencyRecorder("b")
        for value in (0.001, 0.002):
            a.record(value)
        for value in (0.003, 0.004):
            b.record(value)
        a.merge(b)
        assert len(a) == 4
        assert a.summary().maximum == 0.004
        # the source recorder is untouched
        assert len(b) == 2

    def test_merged_classmethod(self):
        parts = []
        for offset in range(3):
            recorder = LatencyRecorder(f"part-{offset}")
            recorder.record(0.001 * (offset + 1))
            parts.append(recorder)
        combined = LatencyRecorder.merged("all", parts)
        assert len(combined) == 3
        assert combined.summary().maximum == pytest.approx(0.003)


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestGauge:
    def test_strict_rejects_time_going_backwards(self):
        gauge = Gauge("g")
        gauge.sample(1.0, 10.0)
        with pytest.raises(ValueError):
            gauge.sample(0.5, 11.0)
        # the bad sample was not recorded
        assert len(gauge) == 1

    def test_strict_allows_equal_timestamps(self):
        gauge = Gauge("g")
        gauge.sample(1.0, 10.0)
        gauge.sample(1.0, 11.0)
        assert gauge.value == 11.0

    def test_non_strict_drops_and_flags(self):
        gauge = Gauge("g", strict_time=False)
        gauge.sample(1.0, 10.0)
        gauge.sample(0.5, 99.0)
        assert gauge.out_of_order == 1
        assert len(gauge) == 1
        assert gauge.value == 10.0

    def test_statistics(self):
        gauge = Gauge("g")
        for time, value in ((0.0, 1.0), (1.0, 3.0), (2.0, 2.0)):
            gauge.sample(time, value)
        assert gauge.mean() == pytest.approx(2.0)
        assert gauge.maximum() == 3.0
        assert gauge.last_time() == 2.0


class TestHistogram:
    #: geometric buckets with growth 1.04 put any sample within ~4%
    #: of its bucket midpoint
    RELATIVE_ERROR = 0.05

    def _check_accuracy(self, samples):
        histogram = Histogram("h")
        for sample in samples:
            histogram.observe(sample)
        for fraction in (0.50, 0.90, 0.95, 0.99):
            exact = percentile(samples, fraction)
            sketched = histogram.quantile(fraction)
            assert sketched == pytest.approx(
                exact, rel=self.RELATIVE_ERROR), \
                f"p{fraction * 100:.0f}: sketch {sketched} vs {exact}"

    def test_accuracy_uniform(self):
        self._check_accuracy([(i + 1) / 1000.0 for i in range(1000)])

    def test_accuracy_skewed(self):
        # deterministic long-tailed distribution (pseudo-random order)
        samples = [0.0001 * (1.3 ** ((i * 7919) % 37)) for i in range(500)]
        self._check_accuracy(samples)

    def test_exact_min_max_mean(self):
        histogram = Histogram("h")
        samples = [0.001, 0.009, 0.004]
        for sample in samples:
            histogram.observe(sample)
        assert histogram.minimum == min(samples)
        assert histogram.maximum == max(samples)
        assert histogram.mean == pytest.approx(sum(samples) / 3)
        assert histogram.quantile(1.0) <= histogram.maximum * 1.0001

    def test_merge(self):
        a = Histogram("a")
        b = Histogram("b")
        for i in range(100):
            a.observe((i + 1) / 1000.0)
        for i in range(100, 200):
            b.observe((i + 1) / 1000.0)
        a.merge(b)
        assert a.count == 200
        exact = percentile([(i + 1) / 1000.0 for i in range(200)], 0.5)
        assert a.quantile(0.5) == pytest.approx(exact, rel=0.05)

    def test_merge_parameter_mismatch_raises(self):
        with pytest.raises(ValueError):
            Histogram("a", growth=1.04).merge(Histogram("b", growth=1.1))


class TestStorageImports:
    def test_shim_module_is_gone(self):
        """The deprecated repro.storage.metrics shim was removed; the
        canonical home of the measurement types is repro.telemetry."""
        with pytest.raises(ModuleNotFoundError):
            import repro.storage.metrics  # noqa: F401

    def test_legacy_gauge_alias_is_the_telemetry_type(self):
        from repro.storage import GaugeSeries
        assert GaugeSeries is Gauge

    def test_package_import_does_not_warn(self):
        """Importing repro.storage itself must stay warning-free."""
        import subprocess
        import sys
        code = ("import warnings; warnings.simplefilter('error', "
                "DeprecationWarning); import repro.storage")
        result = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
