"""Tests for the label-aware metrics registry and its renderings."""

import json

import pytest

from repro.telemetry import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRegistration:
    def test_same_labels_return_same_instrument(self, registry):
        first = registry.counter("writes_total", array="A")
        second = registry.counter("writes_total", array="A")
        assert first is second
        first.increment()
        assert second.value == 1

    def test_distinct_label_values_are_distinct_children(self, registry):
        a = registry.counter("writes_total", array="A")
        b = registry.counter("writes_total", array="B")
        assert a is not b
        a.increment(3)
        assert b.value == 0
        assert len(registry.family("writes_total")) == 2

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_label_key_mismatch_raises(self, registry):
        registry.counter("writes_total", array="A")
        with pytest.raises(ValueError):
            registry.counter("writes_total", pool="p1")

    def test_labels_attached_to_instrument(self, registry):
        gauge = registry.gauge("lag", group="cg-1")
        assert gauge.labels == {"group": "cg-1"}

    def test_get_never_creates(self, registry):
        assert registry.get("absent") is None
        registry.counter("present", array="A")
        assert registry.get("present", array="B") is None
        assert registry.get("present", array="A") is not None
        assert registry.family("absent") is None

    def test_help_backfilled_once(self, registry):
        registry.counter("c")
        registry.counter("c", help="late help")
        assert registry.family("c").help == "late help"


class TestRendering:
    def _populate(self, registry):
        registry.counter("repro_writes_total", help="writes",
                         array="A").increment(7)
        registry.gauge("repro_lag", group="cg").sample(1.0, 42.0)
        histogram = registry.histogram("repro_latency_seconds",
                                       unit="seconds", array="A")
        for i in range(10):
            histogram.observe(0.001 * (i + 1))
        summary = registry.summary("repro_order_seconds", workload="w")
        summary.record(0.25)

    def test_prometheus_text(self, registry):
        self._populate(registry)
        text = registry.render()
        assert "# HELP repro_writes_total writes" in text
        assert "# TYPE repro_writes_total counter" in text
        assert 'repro_writes_total{array="A"} 7' in text
        assert 'repro_lag{group="cg"} 42' in text
        assert 'repro_latency_seconds{array="A",quantile="0.5"}' in text
        assert 'repro_latency_seconds_count{array="A"} 10' in text
        assert 'repro_order_seconds_count{workload="w"} 1' in text

    def test_json_snapshot_round_trips(self, registry):
        self._populate(registry)
        snapshot = json.loads(registry.render(format="json"))
        assert snapshot["repro_writes_total"]["kind"] == "counter"
        series = snapshot["repro_writes_total"]["series"]
        assert series == [{"labels": {"array": "A"}, "value": 7}]
        latency = snapshot["repro_latency_seconds"]
        assert latency["unit"] == "seconds"
        assert latency["series"][0]["count"] == 10
        assert latency["series"][0]["p50"] > 0

    def test_unknown_format_raises(self, registry):
        with pytest.raises(ValueError):
            registry.render(format="xml")

    def test_empty_gauge_renders_nothing_but_snapshots_none(self, registry):
        registry.gauge("idle", group="g")
        assert 'idle{group="g"}' not in registry.render()
        snapshot = registry.snapshot()
        assert snapshot["idle"]["series"][0]["value"] is None


class TestLenientGaugeSurfacing:
    """``strict_time=False`` gauges drop late samples silently at the
    call site; both renderings must keep the drop count visible."""

    def _lenient(self, registry):
        gauge = registry.gauge("repro_lag", strict_time=False, group="cg")
        gauge.sample(1.0, 10.0)
        gauge.sample(0.5, 99.0)  # time went backwards: dropped
        gauge.sample(0.2, 77.0)  # and again
        return gauge

    def test_drops_counted_not_recorded(self, registry):
        gauge = self._lenient(registry)
        assert gauge.out_of_order == 2
        assert len(gauge) == 1
        assert gauge.value == 10.0

    def test_prom_exposition_carries_out_of_order_series(self, registry):
        self._lenient(registry)
        text = registry.render()
        assert 'repro_lag{group="cg"} 10' in text
        assert 'repro_lag_out_of_order_total{group="cg"} 2' in text

    def test_strict_gauge_renders_no_out_of_order_series(self, registry):
        registry.gauge("repro_ok", group="cg").sample(1.0, 5.0)
        assert "out_of_order" not in registry.render()

    def test_json_snapshot_carries_out_of_order_count(self, registry):
        self._lenient(registry)
        snapshot = json.loads(registry.render(format="json"))
        series = snapshot["repro_lag"]["series"][0]
        assert series["out_of_order"] == 2
        assert series["samples"] == 1
        assert series["value"] == 10.0

    def test_empty_lenient_gauge_snapshot_shows_zero(self, registry):
        registry.gauge("repro_idle", strict_time=False, group="g")
        snapshot = registry.snapshot()
        assert snapshot["repro_idle"]["series"][0]["out_of_order"] == 0


class TestSimulatorWiring:
    def test_simulator_exposes_telemetry(self):
        from repro.simulation import Simulator
        sim = Simulator(seed=1)
        counter = sim.telemetry.registry.counter("x")
        counter.increment()
        assert sim.telemetry.registry.get("x").value == 1

    def test_spans_mirrored_into_trace_log(self):
        from repro.simulation import Simulator
        sim = Simulator(seed=1, trace=True)
        span = sim.telemetry.tracer.start("demo-span")
        sim.telemetry.tracer.finish(span)
        records = list(sim.trace.matching("span"))
        assert len(records) == 1
        assert records[0].detail["name"] == "demo-span"
