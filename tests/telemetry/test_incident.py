"""Postmortem generator tests.

The unit half drives :func:`build_incident` against a manually-clocked
telemetry bundle; the acceptance half runs the canonical chaos incident
(``repro incident``) and asserts the causal chain the observability
layer exists to demonstrate: fault → alert fired → suspension →
resync → alert resolved.
"""

import json

import pytest

from repro.telemetry import (AlertTransition, Telemetry, build_incident)


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.telemetry = Telemetry(lambda: self.now)


class TestBuildIncident:
    def _populated_sim(self):
        sim = FakeSim()
        recorder = sim.telemetry.recorder
        tracer = sim.telemetry.tracer
        sim.now = 0.1
        recorder.record("fault", "link-partition", action="inject")
        span = tracer.start("resync")
        sim.now = 0.3
        tracer.finish(span, status="ok")
        recorder.record("resync", "cg", event="completed")
        sim.telemetry.registry.counter(
            "repro_chaos_faults_total", fault="link-partition").increment()
        sim.telemetry.registry.counter(
            "repro_host_writes_total").increment(99)  # filtered out
        sim.now = 0.5
        return sim

    def test_joins_the_three_streams(self):
        sim = self._populated_sim()
        report = build_incident(
            sim, title="t", seed=3,
            alerts=[AlertTransition(0.2, "rpo", "firing", "d")])
        assert [e["name"] for e in report.timeline] == \
            ["link-partition", "cg"]
        assert report.alerts == [{"time": 0.2, "rule": "rpo",
                                  "state": "firing", "detail": "d"}]
        assert [s["name"] for s in report.stages] == ["resync"]
        assert report.stages[0]["count"] == 1
        assert report.stages[0]["mean"] == pytest.approx(0.2)
        assert report.metrics == {
            'repro_chaos_faults_total{fault="link-partition"}': 1,
            'repro_flight_events_total{category="fault"}': 1,
            'repro_flight_events_total{category="resync"}': 1,
        }
        assert (report.started_at, report.finished_at) == (0.1, 0.5)

    def test_window_bounds_the_timeline(self):
        sim = self._populated_sim()
        report = build_incident(sim, window=(0.2, 0.4))
        assert [e["name"] for e in report.timeline] == ["cg"]
        assert report.started_at == 0.2

    def test_timeline_sorted_by_time_then_seq(self):
        sim = FakeSim()
        recorder = sim.telemetry.recorder
        sim.now = 0.2
        recorder.record("b", "second")
        recorder.record("b", "third")  # same instant: seq breaks the tie
        sim.now = 0.1
        recorder.record("a", "first")  # recorded later, happened earlier
        sim.now = 0.3
        report = build_incident(sim)
        assert [e["name"] for e in report.timeline] == \
            ["first", "second", "third"]

    def test_dropped_events_are_noted(self):
        from repro.telemetry import FlightRecorder
        sim = FakeSim()
        sim.telemetry.recorder = FlightRecorder(lambda: sim.now,
                                                capacity=2)
        for index in range(5):
            sim.telemetry.recorder.record("tick", f"e{index}")
        report = build_incident(sim)
        assert any("dropped 3 oldest events" in note
                   for note in report.notes)

    def test_json_round_trips_and_is_deterministic(self):
        reports = [build_incident(self._populated_sim(), title="t",
                                  seed=3) for _ in range(2)]
        assert reports[0].to_json() == reports[1].to_json()
        assert json.loads(reports[0].to_json()) == reports[0].to_dict()

    def test_markdown_sections(self):
        sim = self._populated_sim()
        text = build_incident(
            sim, title="demo", seed=3,
            alerts=[AlertTransition(0.2, "rpo", "firing", "d")],
            notes=["extra note"]).to_markdown()
        for heading in ("# Incident postmortem: demo", "## Timeline",
                        "## Alerts", "## Stage latencies (spans)",
                        "## Metrics at close"):
            assert heading in text
        assert "- seed: 3" in text
        assert "- extra note" in text
        assert "**fault** link-partition — action=inject" in text
        assert "| resync | 1 |" in text

    def test_empty_simulation_renders_placeholders(self):
        text = build_incident(FakeSim()).to_markdown()
        assert "(no events recorded)" in text
        assert "(no alert transitions)" in text
        assert "(no finished spans)" in text
        assert "(no matching counters)" in text


class TestCanonicalIncident:
    """The ISSUE acceptance scenario, end to end."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.chaos import run_incident
        return run_incident(seed=7)

    def test_campaign_passes_with_alerts(self, run):
        assert run.report.passed
        assert run.report.violations == []
        rpo = [t for t in run.report.alerts
               if t.rule == "rpo-journal-lag"]
        assert [t.state for t in rpo] == ["firing", "resolved"]
        suspended = [t for t in run.report.alerts
                     if t.rule == "replication-suspended"]
        assert [t.state for t in suspended] == ["firing", "resolved"]

    def test_causal_ordering(self, run):
        """fault → alert fired → suspension → resync → alert resolved."""
        def first_time(predicate):
            for event in run.incident.timeline:
                if predicate(event):
                    return event["time"]
            raise AssertionError("event not found in timeline")

        fault = first_time(lambda e: e["category"] == "fault"
                           and e["attrs"].get("action") == "inject")
        fired = first_time(lambda e: e["category"] == "alert"
                           and e["name"] == "rpo-journal-lag"
                           and e["attrs"].get("state") == "firing")
        suspended = first_time(lambda e: e["category"] == "suspension")
        resync = first_time(lambda e: e["category"] == "resync"
                            and e["attrs"].get("event") == "started")
        resolved = first_time(lambda e: e["category"] == "alert"
                              and e["name"] == "rpo-journal-lag"
                              and e["attrs"].get("state") == "resolved")
        assert fault < fired < suspended < resync < resolved

    def test_postmortem_quotes_alert_counters(self, run):
        metrics = run.incident.metrics
        assert metrics[
            'repro_alerts_total{rule="rpo-journal-lag",'
            'state="firing"}'] == 1
        assert metrics[
            'repro_alerts_total{rule="rpo-journal-lag",'
            'state="resolved"}'] == 1

    def test_engine_slo_state_is_quiescent_at_close(self, run):
        assert run.engine.slo is not None
        assert run.engine.slo.firing_rules() == []

    def test_recorder_snapshot_taken(self, run):
        snapshots = run.engine.env.sim.telemetry.recorder.snapshots
        assert any(s["reason"] == "incident-campaign" for s in snapshots)

    def test_same_seed_reproduces_postmortem_bytes(self, run):
        from repro.chaos import run_incident
        again = run_incident(seed=7)
        assert again.incident.to_json() == run.incident.to_json()
