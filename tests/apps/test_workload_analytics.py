"""Unit tests for the workload generator and the analytics application."""

import pytest

from repro.apps import (CatalogItem, EcommerceApp, WorkloadConfig,
                        build_report, run_order_workload)
from repro.apps.analytics import DatabaseImage, run_analytics
from repro.apps.ecommerce import BusinessState
from repro.apps.minidb import MemoryBlockDevice
from repro.simulation import Simulator
from tests.apps.conftest import make_db, run


def fresh_app(sim, qty=10_000):
    # zero-latency devices run thousands of orders per simulated second;
    # size the logs accordingly
    sales = make_db(sim, "sales", wal_blocks=65_536)
    stock = make_db(sim, "stock", wal_blocks=65_536)
    catalog = [CatalogItem(f"item-{i}", qty, 10.0 * (i + 1))
               for i in range(4)]
    app = EcommerceApp(sales, stock, catalog)
    run(sim, app.seed())
    return app


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(client_count=0)
        with pytest.raises(ValueError):
            WorkloadConfig(duration=0)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_think_time=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(max_order_qty=0)


class TestRunOrderWorkload:
    def test_produces_orders_and_summary(self):
        sim = Simulator(seed=33)
        app = fresh_app(sim)
        result = run_order_workload(sim, app, WorkloadConfig(
            client_count=3, duration=0.5))
        assert result.accepted > 0
        assert result.throughput == result.accepted / 0.5
        summary = result.latency_summary()
        assert summary.count == result.accepted
        assert summary.p50 >= 0  # zero-latency devices: commits are free

    def test_deterministic_per_seed(self):
        def once():
            sim = Simulator(seed=44)
            app = fresh_app(sim)
            result = run_order_workload(sim, app, WorkloadConfig(
                client_count=2, duration=0.3))
            return [(r.gtid, r.item_id, r.qty) for r in result.results]

        assert once() == once()

    def test_think_time_lowers_throughput(self):
        def throughput(think):
            sim = Simulator(seed=55)
            app = fresh_app(sim)
            result = run_order_workload(sim, app, WorkloadConfig(
                client_count=2, duration=0.5, mean_think_time=think))
            return result.accepted

        assert throughput(0.05) < throughput(0.0)

    def test_rejections_counted(self):
        sim = Simulator(seed=66)
        app = fresh_app(sim, qty=1)  # stock exhausts almost immediately
        result = run_order_workload(sim, app, WorkloadConfig(
            client_count=2, duration=0.3))
        assert result.rejected > 0


class TestAnalytics:
    def test_run_analytics_over_images(self):
        sim = Simulator(seed=77)
        sales_wal, sales_data = MemoryBlockDevice(512), \
            MemoryBlockDevice(64)
        stock_wal, stock_data = MemoryBlockDevice(512), \
            MemoryBlockDevice(64)
        from repro.apps.minidb import MiniDB
        sales = MiniDB(sim, "sales", wal_device=sales_wal,
                       data_device=sales_data, bucket_count=8)
        stock = MiniDB(sim, "stock", wal_device=stock_wal,
                       data_device=stock_data, bucket_count=8)
        app = EcommerceApp(sales, stock,
                           [CatalogItem("w", 100, 2.5)])
        run(sim, app.seed())
        run(sim, app.place_order("w", 4))
        report = run(sim, run_analytics(
            sim,
            DatabaseImage(sales_wal, sales_data, 8),
            DatabaseImage(stock_wal, stock_data, 8)))
        assert report.order_count == 1
        assert report.total_revenue == pytest.approx(10.0)
        assert report.units_sold == {"w": 4}
        assert report.remaining_stock == {"w": 96}
        assert report.top_seller() == "w"
        assert report.scan_seconds >= 0

    def test_build_report_empty_state(self):
        report = build_report(BusinessState(
            orders={}, movements={}, quantities={}, prices={}))
        assert report.order_count == 0
        assert report.total_revenue == 0
        assert report.top_seller() is None
