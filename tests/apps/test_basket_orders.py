"""Tests for multi-item (basket) orders: atomicity, lock ordering,
recovery compatibility."""

import pytest

from repro.errors import DatabaseError
from repro.apps import CatalogItem, EcommerceApp, build_report
from repro.apps.ecommerce import decode_business_state
from repro.recovery import check_business_invariants
from tests.apps.conftest import make_db, run


@pytest.fixture()
def app(sim):
    sales = make_db(sim, "sales", wal_blocks=8192)
    stock = make_db(sim, "stock", wal_blocks=8192)
    catalog = [CatalogItem("widget", 100, 10.0),
               CatalogItem("gadget", 50, 25.0),
               CatalogItem("gizmo", 10, 99.0)]
    app = EcommerceApp(sales, stock, catalog)
    run(sim, app.seed())
    return app


def business_of(app):
    sales_state = {}
    stock_state = {}
    for page in app.sales_db._cache.values():
        sales_state.update(page.data)
    for page in app.stock_db._cache.values():
        stock_state.update(page.data)
    return decode_business_state(sales_state, stock_state)


class TestBasketOrders:
    def test_basket_commits_every_line_atomically(self, sim, app):
        result = run(sim, app.place_basket_order(
            [("widget", 2), ("gadget", 1)]))
        assert result.accepted
        assert run(sim, app.stock_db.read("qty:widget")) == "98"
        assert run(sim, app.stock_db.read("qty:gadget")) == "49"
        business = business_of(app)
        order = business.orders[result.gtid]
        assert order["lines"] == [{"item": "gadget", "qty": 1},
                                  {"item": "widget", "qty": 2}]
        assert order["amount"] == pytest.approx(2 * 10.0 + 25.0)

    def test_one_short_line_aborts_the_whole_basket(self, sim, app):
        result = run(sim, app.place_basket_order(
            [("widget", 1), ("gizmo", 11)]))  # gizmo has only 10
        assert not result.accepted
        assert result.reason == "insufficient stock"
        assert run(sim, app.stock_db.read("qty:widget")) == "100"
        assert run(sim, app.stock_db.read("qty:gizmo")) == "10"

    def test_duplicate_lines_are_merged(self, sim, app):
        result = run(sim, app.place_basket_order(
            [("widget", 2), ("widget", 3)]))
        assert result.accepted
        assert run(sim, app.stock_db.read("qty:widget")) == "95"

    def test_unknown_item_rejected(self, sim, app):
        result = run(sim, app.place_basket_order([("nope", 1)]))
        assert not result.accepted
        assert result.reason == "unknown item"

    def test_validation(self, sim, app):
        with pytest.raises(DatabaseError):
            run(sim, app.place_basket_order([]))
        with pytest.raises(DatabaseError):
            run(sim, app.place_basket_order([("widget", 0)]))

    def test_concurrent_baskets_are_deadlock_free(self, sim, app):
        """Baskets touching overlapping items in different caller orders
        must not deadlock (sorted lock acquisition)."""
        done = []

        def buyer(sim, lines, tag):
            for _ in range(10):
                yield from app.place_basket_order(lines)
            done.append(tag)

        sim.spawn(buyer(sim, [("widget", 1), ("gadget", 1)], "a"))
        sim.spawn(buyer(sim, [("gadget", 1), ("widget", 1)], "b"))
        sim.run(until=60.0)
        assert sorted(done) == ["a", "b"]
        assert run(sim, app.stock_db.read("qty:widget")) == "80"
        assert run(sim, app.stock_db.read("qty:gadget")) == "30"

    def test_mixed_single_and_basket_orders_stay_consistent(self, sim,
                                                            app):
        run(sim, app.place_order("widget", 1))
        run(sim, app.place_basket_order([("widget", 2), ("gadget", 4)]))
        business = business_of(app)
        report = check_business_invariants(
            business, list(app.catalog.values()))
        assert report.consistent
        analytics = build_report(business)
        assert analytics.order_count == 2
        assert analytics.units_sold == {"widget": 3, "gadget": 4}
        assert analytics.total_revenue == pytest.approx(
            1 * 10.0 + 2 * 10.0 + 4 * 25.0)
