"""Tests for two-phase commit and the e-commerce application."""

import pytest

from repro.errors import TwoPhaseCommitError
from repro.apps import (CatalogItem, EcommerceApp, build_report,
                        decode_business_state, default_catalog)
from repro.apps.minidb import (MemoryBlockDevice, TwoPhaseCoordinator,
                               WriteOp, recover_database)
from tests.apps.conftest import make_db, run


@pytest.fixture()
def pair(sim):
    sales = make_db(sim, "sales")
    stock = make_db(sim, "stock")
    return sales, stock


class TestTwoPhaseCommit:
    def test_atomic_cross_db_commit(self, sim, pair):
        sales, stock = pair
        coord = TwoPhaseCoordinator(sales, [sales, stock])
        run(sim, coord.execute([
            WriteOp("sales", "order:1", "{}"),
            WriteOp("stock", "mov:1", "{}"),
        ]))
        assert run(sim, sales.read("order:1")) == "{}"
        assert run(sim, stock.read("mov:1")) == "{}"

    def test_coordinator_must_participate(self, sim, pair):
        sales, stock = pair
        with pytest.raises(TwoPhaseCommitError):
            TwoPhaseCoordinator(sales, [stock])

    def test_empty_transaction_rejected(self, sim, pair):
        sales, stock = pair
        coord = TwoPhaseCoordinator(sales, [sales, stock])
        proc = sim.spawn(coord.execute([]))
        sim.run()
        with pytest.raises(TwoPhaseCommitError):
            _ = proc.result

    def test_prepared_abort_leaves_no_trace(self, sim, pair):
        sales, stock = pair
        coord = TwoPhaseCoordinator(sales, [sales, stock])

        def proc(sim):
            dtx = coord.begin()
            yield from dtx.put("sales", "order:x", "{}")
            yield from dtx.put("stock", "mov:x", "{}")
            yield from dtx.abort(prepared=True)

        run(sim, proc(sim))
        assert run(sim, sales.read("order:x")) is None
        assert run(sim, stock.read("mov:x")) is None

    def test_finished_transaction_rejects_reuse(self, sim, pair):
        sales, stock = pair
        coord = TwoPhaseCoordinator(sales, [sales, stock])

        def proc(sim):
            dtx = coord.begin()
            yield from dtx.put("sales", "k", "v")
            yield from dtx.commit()
            yield from dtx.put("sales", "k2", "v")

        proc_handle = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(TwoPhaseCommitError):
            _ = proc_handle.result

    def test_decision_record_lands_in_coordinator_wal(self, sim):
        sales_wal = MemoryBlockDevice(64)
        from repro.apps.minidb import MiniDB
        sales = MiniDB(sim, "sales", wal_device=sales_wal,
                       data_device=MemoryBlockDevice(64), bucket_count=4)
        stock = make_db(sim, "stock")
        coord = TwoPhaseCoordinator(sales, [sales, stock])
        run(sim, coord.execute([WriteOp("stock", "k", "v")],
                               gtid="gtx-77"))
        recovered = run(sim, recover_database(
            sim, "sales", sales_wal, MemoryBlockDevice(64),
            bucket_count=4))
        assert recovered.coordinator_decisions == {"gtx-77": True}


class TestEcommerceApp:
    def make_app(self, sim, pair, qty=10):
        sales, stock = pair
        catalog = [CatalogItem("item-a", qty, 10.0),
                   CatalogItem("item-b", qty, 20.0)]
        app = EcommerceApp(sales, stock, catalog)
        run(sim, app.seed())
        return app

    def test_order_decrements_stock_and_records_both_sides(self, sim, pair):
        app = self.make_app(sim, pair)
        result = run(sim, app.place_order("item-a", 3))
        assert result.accepted
        sales, stock = pair
        assert run(sim, stock.read("qty:item-a")) == "7"
        assert run(sim, stock.read(f"mov:{result.gtid}")) is not None
        assert run(sim, sales.read(f"order:{result.gtid}")) is not None

    def test_insufficient_stock_rejected_cleanly(self, sim, pair):
        app = self.make_app(sim, pair, qty=2)
        result = run(sim, app.place_order("item-a", 5))
        assert not result.accepted
        assert result.reason == "insufficient stock"
        sales, stock = pair
        assert run(sim, stock.read("qty:item-a")) == "2"
        assert app.orders_rejected == 1

    def test_unknown_item_rejected(self, sim, pair):
        app = self.make_app(sim, pair)
        result = run(sim, app.place_order("nope", 1))
        assert not result.accepted
        assert result.reason == "unknown item"

    def test_concurrent_orders_conserve_stock(self, sim, pair):
        app = self.make_app(sim, pair, qty=100)

        def buyer(sim, count):
            for _ in range(count):
                yield from app.place_order("item-a", 1)

        for _ in range(5):
            sim.spawn(buyer(sim, 10))
        sim.run()
        sales, stock = pair
        assert run(sim, stock.read("qty:item-a")) == "50"
        assert app.orders_accepted == 50

    def test_decode_business_state_and_report(self, sim, pair):
        app = self.make_app(sim, pair, qty=50)
        run(sim, app.place_order("item-a", 2))
        run(sim, app.place_order("item-b", 5))

        # decode from the engines' committed page caches
        sales, stock = pair
        sales_state = {}
        stock_state = {}
        for page in sales._cache.values():
            sales_state.update(page.data)
        for page in stock._cache.values():
            stock_state.update(page.data)
        business = decode_business_state(sales_state, stock_state)
        assert len(business.orders) == 2
        assert len(business.movements) == 2
        assert business.quantities["item-a"] == 48
        report = build_report(business)
        assert report.order_count == 2
        assert report.total_revenue == pytest.approx(2 * 10.0 + 5 * 20.0)
        assert report.units_sold == {"item-a": 2, "item-b": 5}
        assert report.top_seller() == "item-b"

    def test_default_catalog_is_deterministic(self):
        assert default_catalog(3) == default_catalog(3)
        assert default_catalog(3)[0].item_id == "item-000"

    def test_catalog_validation(self):
        with pytest.raises(ValueError):
            CatalogItem("x", -1, 1.0)
        with pytest.raises(ValueError):
            CatalogItem("x", 1, 0.0)
