"""Shared fixtures for MiniDB and application tests."""

import pytest

from repro.apps.minidb import MemoryBlockDevice, MiniDB
from repro.simulation import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=51)


def make_db(sim, name="db", wal_blocks=4096, bucket_count=8):
    return MiniDB(sim, name,
                  wal_device=MemoryBlockDevice(wal_blocks),
                  data_device=MemoryBlockDevice(max(bucket_count, 64)),
                  bucket_count=bucket_count)


@pytest.fixture()
def db(sim):
    return make_db(sim)


def run(sim, generator, timeout=None):
    return sim.run_until_complete(sim.spawn(generator), timeout=timeout)


def put_commit(sim, db, items):
    """Commit a batch of key/value pairs in one transaction."""
    def proc(sim):
        txn = db.begin()
        for key, value in items.items():
            yield from db.put(txn, key, value)
        yield from db.commit(txn)

    run(sim, proc(sim))
