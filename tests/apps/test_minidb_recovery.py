"""Unit tests for MiniDB recovery: redo, crash cuts, 2PC resolution,
corruption detection."""

import pytest

from repro.errors import CorruptPageError, RecoveryError
from repro.apps.minidb import (MemoryBlockDevice, MiniDB, Page,
                               recover_database, reopen_database)
from repro.apps.minidb.pages import bucket_for_key
from tests.apps.conftest import put_commit, run


def fresh_db(sim, wal_device, data_device, bucket_count=4):
    return MiniDB(sim, "db", wal_device=wal_device,
                  data_device=data_device, bucket_count=bucket_count)


def truncate(device: MemoryBlockDevice, keep_blocks: int):
    """Simulate a crash cut: keep only the first ``keep_blocks`` blocks
    of a device (valid because WAL writes are sequential)."""
    device._blocks = {block: payload
                      for block, payload in device._blocks.items()
                      if block < keep_blocks}


class TestRedoRecovery:
    def test_recovers_committed_state_without_checkpoints(self, sim):
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)
        put_commit(sim, db, {"a": "1", "b": "2"})
        put_commit(sim, db, {"a": "3"})
        recovered = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                              bucket_count=4))
        assert recovered.state == {"a": "3", "b": "2"}
        assert recovered.clean
        assert len(recovered.committed) == 2

    def test_uncommitted_tail_is_discarded(self, sim):
        """A WAL cut after updates but before the commit record must
        yield the pre-transaction state."""
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)
        put_commit(sim, db, {"a": "committed"})
        put_commit(sim, db, {"a": "second"})
        # cut between the second txn's update record and commit record
        truncate(wal_dev, 3)
        recovered = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                              bucket_count=4))
        assert recovered.state == {"a": "committed"}
        assert len(recovered.committed) == 1

    def test_redo_respects_page_lsn_after_checkpoint(self, sim):
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)
        put_commit(sim, db, {"a": "1"})
        run(sim, db.checkpoint())
        put_commit(sim, db, {"a": "2"})
        recovered = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                              bucket_count=4))
        assert recovered.state["a"] == "2"

    def test_empty_devices_recover_to_empty(self, sim):
        recovered = run(sim, recover_database(
            sim, "db", MemoryBlockDevice(8), MemoryBlockDevice(8),
            bucket_count=4))
        assert recovered.state == {}
        assert recovered.next_lsn == 0

    def test_reopen_resumes_wal_and_serves_data(self, sim):
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)
        put_commit(sim, db, {"a": "1"})
        recovered = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                              bucket_count=4))
        reopened = reopen_database(sim, "db", wal_dev, data_dev, 4,
                                   recovered)
        assert run(sim, reopened.read("a")) == "1"
        put_commit(sim, reopened, {"b": "2"})
        again = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                          bucket_count=4))
        assert again.state == {"a": "1", "b": "2"}


class TestTwoPhaseResolution:
    def _prepared_crash(self, sim, decide=None):
        """Build a WAL with one prepared-but-undecided transaction."""
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)

        def proc(sim):
            txn = db.begin("t1")
            yield from db.put(txn, "a", "prepared-value")
            yield from db.prepare(txn, "gtx-1")
            if decide is not None:
                yield from db.log_global_decision("gtx-1", decide)

        run(sim, proc(sim))
        return wal_dev, data_dev

    def test_prepared_without_decisions_stays_in_doubt(self, sim):
        wal_dev, data_dev = self._prepared_crash(sim)
        recovered = run(sim, recover_database(sim, "db", wal_dev, data_dev,
                                              bucket_count=4))
        assert recovered.in_doubt == {"t1": "gtx-1"}
        assert not recovered.clean
        with pytest.raises(RecoveryError):
            reopen_database(sim, "db", wal_dev, data_dev, 4, recovered)

    def test_presumed_abort_without_coordinator_record(self, sim):
        wal_dev, data_dev = self._prepared_crash(sim)
        recovered = run(sim, recover_database(
            sim, "db", wal_dev, data_dev, bucket_count=4,
            coordinator_decisions={}))
        assert recovered.clean
        assert "a" not in recovered.state
        assert "gtx-1" in recovered.presumed_aborted

    def test_commit_decision_redoes_prepared_writes(self, sim):
        wal_dev, data_dev = self._prepared_crash(sim)
        recovered = run(sim, recover_database(
            sim, "db", wal_dev, data_dev, bucket_count=4,
            coordinator_decisions={"gtx-1": True}))
        assert recovered.state == {"a": "prepared-value"}

    def test_own_coordinator_records_are_scanned(self, sim):
        wal_dev, data_dev = self._prepared_crash(sim, decide=True)
        recovered = run(sim, recover_database(
            sim, "db", wal_dev, data_dev, bucket_count=4))
        assert recovered.coordinator_decisions == {"gtx-1": True}


class TestCorruption:
    def test_corrupt_page_detected(self, sim):
        wal_dev, data_dev = MemoryBlockDevice(64), MemoryBlockDevice(64)
        db = fresh_db(sim, wal_dev, data_dev)
        put_commit(sim, db, {"a": "1"})
        run(sim, db.checkpoint())
        page_id = bucket_for_key("a", 4)
        data_dev._blocks[page_id] = b"garbage-not-a-page"
        proc = sim.spawn(recover_database(sim, "db", wal_dev, data_dev,
                                          bucket_count=4))
        sim.run()
        with pytest.raises(CorruptPageError):
            _ = proc.result

    def test_page_round_trip_and_checksum(self):
        page = Page(page_id=3, lsn=7, data={"k": "v"})
        restored = Page.from_bytes(3, page.to_bytes())
        assert restored.data == {"k": "v"}
        assert restored.lsn == 7
        with pytest.raises(CorruptPageError):
            Page.from_bytes(4, page.to_bytes())  # wrong page id
        tampered = bytearray(page.to_bytes())
        tampered[-1] ^= 0xFF
        with pytest.raises(CorruptPageError):
            Page.from_bytes(3, bytes(tampered))
