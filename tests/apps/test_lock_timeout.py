"""Tests for the lock-timeout safety net (deadlock -> abortable error)."""

import pytest

from repro.errors import DatabaseError, TransactionError
from repro.apps.minidb import MemoryBlockDevice, MiniDB
from repro.simulation import Simulator
from tests.apps.conftest import run


def timed_db(sim, timeout=0.5):
    return MiniDB(sim, "db", wal_device=MemoryBlockDevice(1024),
                  data_device=MemoryBlockDevice(64), bucket_count=4,
                  lock_timeout=timeout)


class TestLockTimeout:
    def test_waiting_past_timeout_raises(self):
        sim = Simulator(seed=1)
        db = timed_db(sim, timeout=0.5)
        outcome = {}

        def holder(sim):
            txn = db.begin("holder")
            yield from db.put(txn, "hot", "v")
            yield sim.timeout(5.0)  # hold the lock far too long
            yield from db.commit(txn)

        def waiter(sim):
            txn = db.begin("waiter")
            try:
                yield from db.put(txn, "hot", "w")
            except TransactionError as exc:
                outcome["error"] = str(exc)
                outcome["at"] = sim.now
                db.abort(txn)

        sim.spawn(holder(sim))
        sim.spawn(waiter(sim))
        sim.run()
        assert "possible deadlock" in outcome["error"]
        assert outcome["at"] == pytest.approx(0.5)
        assert db.locks.timeout_count == 1
        # the holder was unaffected and committed
        assert run(sim, db.read("hot")) == "v"

    def test_grant_before_timeout_proceeds(self):
        sim = Simulator(seed=2)
        db = timed_db(sim, timeout=5.0)

        def holder(sim):
            txn = db.begin("holder")
            yield from db.put(txn, "hot", "v1")
            yield sim.timeout(0.2)
            yield from db.commit(txn)

        def waiter(sim):
            txn = db.begin("waiter")
            yield from db.put(txn, "hot", "v2")
            yield from db.commit(txn)

        sim.spawn(holder(sim))
        sim.spawn(waiter(sim))
        sim.run()
        assert run(sim, db.read("hot")) == "v2"
        assert db.locks.timeout_count == 0

    def test_true_deadlock_is_broken_by_timeout(self):
        """Two transactions acquiring in opposite orders deadlock; the
        timeout converts the hang into aborts and the system survives."""
        sim = Simulator(seed=3)
        db = timed_db(sim, timeout=0.3)
        survived = []

        def worker(sim, tag, first, second):
            txn = db.begin(tag)
            try:
                yield from db.put(txn, first, tag)
                yield sim.timeout(0.1)  # guarantee lock overlap
                yield from db.put(txn, second, tag)
                yield from db.commit(txn)
                survived.append(tag)
            except TransactionError:
                db.abort(txn)

        sim.spawn(worker(sim, "ab", "a", "b"))
        sim.spawn(worker(sim, "ba", "b", "a"))
        sim.run(until=10.0)
        # at least one side aborted; nothing hangs; locks are free
        assert db.locks.timeout_count >= 1

        def probe(sim):
            txn = db.begin("probe")
            yield from db.put(txn, "a", "p")
            yield from db.put(txn, "b", "p")
            yield from db.commit(txn)

        run(sim, probe(sim))
        assert run(sim, db.read("a")) == "p"

    def test_validation(self):
        sim = Simulator(seed=4)
        with pytest.raises(DatabaseError):
            timed_db(sim, timeout=0)
