"""In-doubt resolution of decided-commit transactions.

Once the coordinator's global COMMIT record is durable, the transaction
will commit in every recovery of the storage image — so the *live* site
must treat it the same way: a crash during Phase 2 parks the handle on
the coordinator's ``in_doubt`` map with its locks held, and
``resolve_in_doubt`` re-drives Phase 2 once storage heals.  Abandoning
such a transaction (the old behaviour) silently diverges the live site
from every recoverable image: siblings read stock quantities that
pretend the decided order never happened, and a later failover
resurrects it.
"""

import pytest

from repro.apps.minidb import MemoryBlockDevice, MiniDB, TwoPhaseCoordinator
from repro.errors import (StorageError, TransactionError,
                          TwoPhaseCommitError)
from repro.simulation import Simulator
from tests.apps.conftest import run


@pytest.fixture()
def sim():
    return Simulator(seed=77)


def make_pair(sim, lock_timeout=None):
    sales = MiniDB(sim, "sales", wal_device=MemoryBlockDevice(4096),
                   data_device=MemoryBlockDevice(64), bucket_count=8,
                   lock_timeout=lock_timeout)
    stock = MiniDB(sim, "stock", wal_device=MemoryBlockDevice(4096),
                   data_device=MemoryBlockDevice(64), bucket_count=8,
                   lock_timeout=lock_timeout)
    return sales, stock, TwoPhaseCoordinator(sales, [sales, stock])


def crash_in_phase_two(sim, stock, coord):
    """One dtx crashed after the decision: sales applied, stock prepared."""
    dtx = coord.begin()
    run(sim, dtx.put("sales", "order:1", "{}"))
    run(sim, dtx.put("stock", "qty:widget", "7"))
    original = stock.commit_prepared

    def dead_storage(txn):
        raise StorageError("array died under the commit")
        yield  # pragma: no cover

    stock.commit_prepared = dead_storage
    with pytest.raises(StorageError):
        run(sim, dtx.commit())
    stock.commit_prepared = original
    dtx.dispose()
    return dtx


class TestDecidedCommitSurvivesCrash:
    def test_dispose_parks_decided_commit_in_doubt(self, sim):
        sales, stock, coord = make_pair(sim)
        dtx = crash_in_phase_two(sim, stock, coord)
        assert coord.in_doubt == {dtx.gtid: dtx}
        # the decided write is not yet readable at the crashed branch...
        assert run(sim, stock.read("qty:widget")) is None
        # ...but the branch that applied before the crash is
        assert run(sim, sales.read("order:1")) == "{}"
        # and the order is not yet counted as committed
        assert dtx.gtid not in coord.committed_gtids

    def test_in_doubt_transaction_keeps_its_locks(self, sim):
        sales, stock, coord = make_pair(sim, lock_timeout=0.02)
        crash_in_phase_two(sim, stock, coord)
        sibling = coord.begin()
        with pytest.raises(TransactionError):
            run(sim, sibling.get_for_update("stock", "qty:widget"))
        sibling.dispose()

    def test_resolve_finishes_phase_two(self, sim):
        sales, stock, coord = make_pair(sim)
        dtx = crash_in_phase_two(sim, stock, coord)
        assert run(sim, coord.resolve_in_doubt()) == 1
        assert coord.in_doubt == {}
        assert run(sim, stock.read("qty:widget")) == "7"
        assert coord.committed_gtids.count(dtx.gtid) == 1
        # locks are free again
        sibling = coord.begin()
        assert run(sim, sibling.get_for_update("stock", "qty:widget")) \
            == "7"
        run(sim, sibling.abort())

    def test_failed_resolution_stays_parked_and_retries(self, sim):
        sales, stock, coord = make_pair(sim)
        dtx = crash_in_phase_two(sim, stock, coord)
        original = stock.commit_prepared

        def still_down(txn):
            raise StorageError("array still down")
            yield  # pragma: no cover

        stock.commit_prepared = still_down
        with pytest.raises(StorageError):
            run(sim, coord.resolve_in_doubt())
        assert dtx.gtid in coord.in_doubt
        stock.commit_prepared = original
        assert run(sim, coord.resolve_in_doubt()) == 1
        assert run(sim, stock.read("qty:widget")) == "7"


class TestUndecidedCrashStillPresumesAbort:
    def test_crash_before_decision_releases_everything(self, sim):
        sales, stock, coord = make_pair(sim, lock_timeout=0.02)
        dtx = coord.begin()
        run(sim, dtx.put("sales", "order:1", "{}"))
        run(sim, dtx.put("stock", "qty:widget", "7"))
        original = stock.prepare

        def dead_prepare(txn, gtid):
            raise StorageError("array died before the vote")
            yield  # pragma: no cover

        stock.prepare = dead_prepare
        with pytest.raises(StorageError):
            run(sim, dtx.commit())
        stock.prepare = original
        dtx.dispose()
        # no durable decision: presumed abort, nothing parked, locks free
        assert coord.in_doubt == {}
        sibling = coord.begin()
        assert run(sim, sibling.get_for_update("stock", "qty:widget")) \
            is None
        run(sim, sibling.abort())

    def test_resolve_rejects_undecided_transaction(self, sim):
        sales, stock, coord = make_pair(sim)
        dtx = coord.begin()
        run(sim, dtx.put("stock", "qty:widget", "7"))
        with pytest.raises(TwoPhaseCommitError):
            run(sim, dtx.resolve())
