"""Unit tests for the MiniDB engine: transactions, locking, WAL,
checkpoints."""

import pytest

from repro.errors import DatabaseError, TransactionError
from repro.apps.minidb import MemoryBlockDevice, MiniDB, read_log
from repro.apps.minidb import wal as wal_types
from tests.apps.conftest import make_db, put_commit, run


class TestBasicTransactions:
    def test_put_commit_read(self, sim, db):
        put_commit(sim, db, {"a": "1"})
        assert run(sim, db.read("a")) == "1"

    def test_uncommitted_writes_invisible(self, sim, db):
        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "dirty")
            value = yield from db.read("a")
            return value

        assert run(sim, proc(sim)) is None

    def test_abort_discards_writes(self, sim, db):
        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "doomed")
            db.abort(txn)

        run(sim, proc(sim))
        assert run(sim, db.read("a")) is None
        assert db.aborted_count == 1

    def test_delete(self, sim, db):
        put_commit(sim, db, {"a": "1"})

        def proc(sim):
            txn = db.begin()
            yield from db.delete(txn, "a")
            yield from db.commit(txn)

        run(sim, proc(sim))
        assert run(sim, db.read("a")) is None

    def test_transaction_sees_own_writes(self, sim, db):
        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "mine")
            value = yield from db.get_for_update(txn, "a")
            yield from db.commit(txn)
            return value

        assert run(sim, proc(sim)) == "mine"

    def test_commit_after_commit_rejected(self, sim, db):
        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "1")
            yield from db.commit(txn)
            yield from db.commit(txn)

        proc_handle = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(TransactionError):
            _ = proc_handle.result

    def test_duplicate_txn_id_rejected(self, sim, db):
        db.begin("t1")
        with pytest.raises(TransactionError):
            db.begin("t1")

    def test_non_string_value_rejected(self, sim, db):
        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", 42)

        proc_handle = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(DatabaseError):
            _ = proc_handle.result


class TestLocking:
    def test_conflicting_writer_waits(self, sim, db):
        order = []

        def slow_writer(sim):
            txn = db.begin("slow")
            yield from db.put(txn, "hot", "slow")
            yield sim.timeout(1.0)
            yield from db.commit(txn)
            order.append(("slow-done", sim.now))

        def fast_writer(sim):
            yield sim.timeout(0.1)  # start second
            txn = db.begin("fast")
            yield from db.put(txn, "hot", "fast")
            yield from db.commit(txn)
            order.append(("fast-done", sim.now))

        sim.spawn(slow_writer(sim))
        sim.spawn(fast_writer(sim))
        sim.run()
        assert order[0][0] == "slow-done"
        assert order[1][1] >= 1.0  # fast waited for slow's lock
        assert run(sim, db.read("hot")) == "fast"

    def test_read_modify_write_is_serialised(self, sim, db):
        """Classic lost-update test: concurrent increments must all land."""
        put_commit(sim, db, {"counter": "0"})

        def incrementer(sim):
            for _ in range(10):
                txn = db.begin()
                value = yield from db.get_for_update(txn, "counter")
                yield from db.put(txn, "counter", str(int(value) + 1))
                yield from db.commit(txn)

        for _ in range(4):
            sim.spawn(incrementer(sim))
        sim.run()
        assert run(sim, db.read("counter")) == "40"

    def test_locks_released_on_abort(self, sim, db):
        def proc(sim):
            txn = db.begin("t1")
            yield from db.put(txn, "k", "v")
            db.abort(txn)
            txn2 = db.begin("t2")
            yield from db.put(txn2, "k", "v2")
            yield from db.commit(txn2)

        run(sim, proc(sim))
        assert run(sim, db.read("k")) == "v2"


class TestWal:
    def test_commit_writes_updates_then_commit_record(self, sim):
        wal_device = MemoryBlockDevice(64)
        db = MiniDB(sim, "db", wal_device=wal_device,
                    data_device=MemoryBlockDevice(64), bucket_count=4)
        put_commit(sim, db, {"a": "1", "b": "2"})
        records = run(sim, read_log(wal_device))
        assert [r.type for r in records] == [
            wal_types.UPDATE, wal_types.UPDATE, wal_types.COMMIT]
        assert [r.lsn for r in records] == [0, 1, 2]

    def test_wal_full_raises(self, sim):
        db = MiniDB(sim, "db", wal_device=MemoryBlockDevice(2),
                    data_device=MemoryBlockDevice(64), bucket_count=4)

        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "1")
            yield from db.put(txn, "b", "2")
            yield from db.commit(txn)  # needs 3 blocks, only 2 exist

        proc_handle = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(DatabaseError):
            _ = proc_handle.result

    def test_failed_commit_aborts_and_releases_locks(self, sim):
        """Regression: a commit that dies on a full WAL must release the
        transaction's locks so other clients do not deadlock."""
        db = MiniDB(sim, "db", wal_device=MemoryBlockDevice(1),
                    data_device=MemoryBlockDevice(64), bucket_count=4)

        def doomed(sim):
            txn = db.begin("doomed")
            yield from db.put(txn, "hot", "v")
            yield from db.commit(txn)  # 2 records needed, 1 block exists

        proc = sim.spawn(doomed(sim))
        sim.run()
        with pytest.raises(DatabaseError):
            _ = proc.result
        assert not db.locks.holds("doomed", "hot")
        assert db.aborted_count == 1

    def test_failed_prepare_aborts_and_releases_locks(self, sim):
        db = MiniDB(sim, "db", wal_device=MemoryBlockDevice(1),
                    data_device=MemoryBlockDevice(64), bucket_count=4)

        def doomed(sim):
            txn = db.begin("doomed")
            yield from db.put(txn, "a", "1")
            yield from db.put(txn, "b", "2")
            yield from db.prepare(txn, "gtx-1")

        proc = sim.spawn(doomed(sim))
        sim.run()
        with pytest.raises(DatabaseError):
            _ = proc.result
        assert not db.locks.holds("doomed", "a")
        assert db.aborted_count == 1

    def test_abort_of_active_txn_writes_nothing(self, sim):
        wal_device = MemoryBlockDevice(64)
        db = MiniDB(sim, "db", wal_device=wal_device,
                    data_device=MemoryBlockDevice(64), bucket_count=4)

        def proc(sim):
            txn = db.begin()
            yield from db.put(txn, "a", "1")
            db.abort(txn)

        run(sim, proc(sim))
        assert run(sim, read_log(wal_device)) == []


class TestCheckpoint:
    def test_checkpoint_flushes_dirty_pages(self, sim):
        data_device = MemoryBlockDevice(64)
        db = MiniDB(sim, "db", wal_device=MemoryBlockDevice(64),
                    data_device=data_device, bucket_count=4)
        put_commit(sim, db, {"a": "1"})
        assert data_device.writes == 0
        flushed = run(sim, db.checkpoint())
        assert flushed == 1
        assert data_device.writes == 1
        # second checkpoint has nothing to do
        assert run(sim, db.checkpoint()) == 0

    def test_checkpointer_process_runs_periodically(self, sim, db):
        sim.spawn(db.checkpointer(0.5), name="ckpt")
        put_commit(sim, db, {"a": "1"})
        sim.run(until=1.6)
        assert db.checkpoint_count >= 2

    def test_bad_checkpoint_interval(self, sim, db):
        with pytest.raises(DatabaseError):
            next(db.checkpointer(0))


class TestValidation:
    def test_bucket_count_bounds(self, sim):
        with pytest.raises(DatabaseError):
            MiniDB(sim, "db", wal_device=MemoryBlockDevice(8),
                   data_device=MemoryBlockDevice(8), bucket_count=0)
        with pytest.raises(DatabaseError):
            MiniDB(sim, "db", wal_device=MemoryBlockDevice(8),
                   data_device=MemoryBlockDevice(8), bucket_count=16)
