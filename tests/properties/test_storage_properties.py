"""Property-based tests (hypothesis) for storage-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.minidb.pages import Page, bucket_for_key
from repro.apps.minidb.wal import WalRecord
from repro.apps.minidb import wal as wal_types
from repro.recovery.checker import check_storage_cut
from repro.storage import JournalVolume, WriteHistory, percentile
from repro.storage.journal import JournalFullError

# -- strategies ----------------------------------------------------------

write_ops = st.lists(
    st.tuples(st.integers(0, 3),      # volume index
              st.integers(0, 7)),     # block
    min_size=1, max_size=60)


def build_history(ops):
    """History + per-volume final version maps from (volume, block) ops."""
    history = WriteHistory()
    versions = {v: 0 for v in range(4)}
    final = {v: {} for v in range(4)}
    for volume, block in ops:
        versions[volume] += 1
        history.append(len(history) * 0.001, volume, block,
                       versions[volume])
        final[volume][block] = versions[volume]
    return history, final


class TestStorageCutProperties:
    @given(ops=write_ops, cut=st.integers(0, 60))
    @settings(max_examples=150, deadline=None)
    def test_any_prefix_cut_is_consistent(self, ops, cut):
        """The defining property: applying exactly the first ``cut``
        acked writes always yields a consistent image."""
        history, _final = build_history(ops)
        cut = min(cut, len(ops))
        image = {v: {} for v in range(4)}
        for record in history.records[:cut]:
            image[record.volume_id][record.block] = record.version
        report = check_storage_cut(history, image)
        assert report.consistent
        assert report.applied_count == cut
        assert report.missing_count == len(ops) - cut

    @given(ops=write_ops, drop=st.integers(0, 59))
    @settings(max_examples=150, deadline=None)
    def test_dropping_a_nonfinal_write_breaks_consistency(self, ops, drop):
        """Removing one acked write from a *full* image is inconsistent,
        unless a later write to the same block hides the hole or the
        dropped write is the image's own frontier."""
        history, final = build_history(ops)
        if drop >= len(ops):
            return
        dropped = history.records[drop]
        later_same_block = any(
            r.volume_id == dropped.volume_id and r.block == dropped.block
            for r in history.records[drop + 1:])
        if later_same_block:
            return  # the hole is invisible: version map keeps the later write
        image = {v: dict(blocks) for v, blocks in final.items()}
        # roll the dropped block back to its previous version
        previous = 0
        for record in history.records[:drop]:
            if record.volume_id == dropped.volume_id and \
                    record.block == dropped.block:
                previous = record.version
        if previous:
            image[dropped.volume_id][dropped.block] = previous
        else:
            image[dropped.volume_id].pop(dropped.block, None)
        report = check_storage_cut(history, image)
        is_last = drop == len(ops) - 1
        assert report.consistent == is_last

    @given(ops=write_ops)
    @settings(max_examples=80, deadline=None)
    def test_full_image_always_consistent(self, ops):
        history, final = build_history(ops)
        report = check_storage_cut(history, final)
        assert report.consistent
        assert report.missing_count == 0


class TestJournalProperties:
    @given(count=st.integers(1, 50), capacity=st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_sequences_dense_and_fifo(self, count, capacity):
        journal = JournalVolume(1, capacity_entries=capacity)
        appended = []
        for index in range(count):
            try:
                entry = journal.append(1, index % 4, b"x", index + 1,
                                       time=0.0)
            except JournalFullError:
                break
            appended.append(entry.sequence)
        assert appended == list(range(len(appended)))
        drained = journal.pop_through(10 ** 9)
        assert [e.sequence for e in drained] == appended

    @given(count=st.integers(2, 40), trim=st.integers(0, 39))
    @settings(max_examples=60, deadline=None)
    def test_pop_through_is_prefix(self, count, trim):
        journal = JournalVolume(1, capacity_entries=100)
        for index in range(count):
            journal.append(1, 0, b"x", index + 1, time=0.0)
        removed = journal.pop_through(trim)
        kept = journal.snapshot_entries()
        assert [e.sequence for e in removed] == \
            [s for s in range(count) if s <= trim]
        assert [e.sequence for e in kept] == \
            [s for s in range(count) if s > trim]


class TestSerialisationProperties:
    @given(data=st.dictionaries(
        st.text(min_size=1, max_size=20), st.text(max_size=40),
        max_size=20),
        page_id=st.integers(0, 1000), lsn=st.integers(-1, 10 ** 9))
    @settings(max_examples=100, deadline=None)
    def test_page_round_trip(self, data, page_id, lsn):
        page = Page(page_id=page_id, lsn=lsn, data=data)
        restored = Page.from_bytes(page_id, page.to_bytes())
        assert restored.data == data
        assert restored.lsn == lsn

    @given(key=st.text(min_size=1, max_size=30),
           value=st.one_of(st.none(), st.text(max_size=40)),
           txn=st.text(min_size=1, max_size=20),
           lsn=st.integers(0, 10 ** 6))
    @settings(max_examples=100, deadline=None)
    def test_wal_record_round_trip(self, key, value, txn, lsn):
        record = WalRecord(type=wal_types.UPDATE, txn_id=txn, key=key,
                           value=value, lsn=lsn)
        restored = WalRecord.from_bytes(record.to_bytes(), lsn)
        assert restored == record

    @given(key=st.text(min_size=1, max_size=50),
           buckets=st.integers(1, 512))
    @settings(max_examples=100, deadline=None)
    def test_bucket_for_key_in_range_and_stable(self, key, buckets):
        bucket = bucket_for_key(key, buckets)
        assert 0 <= bucket < buckets
        assert bucket == bucket_for_key(key, buckets)


class TestPercentileProperties:
    @given(samples=st.lists(st.floats(min_value=0, max_value=1e6,
                                      allow_nan=False), min_size=1,
                            max_size=100),
           fraction=st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_percentile_bounded_and_monotone(self, samples, fraction):
        value = percentile(samples, fraction)
        assert min(samples) <= value <= max(samples)
        assert percentile(samples, 0.0) == min(samples)
        assert percentile(samples, 1.0) == max(samples)
        if fraction < 1:
            assert percentile(samples, fraction) <= \
                percentile(samples, 1.0)
