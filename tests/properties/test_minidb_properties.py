"""Property-based tests for MiniDB: engine-vs-model and recovery
prefix semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.minidb import (MemoryBlockDevice, MiniDB,
                               recover_database)
from repro.simulation import Simulator

# operations: (kind, key, value) — kind 0=put 1=delete, committed in
# batches; every batch is one transaction ending in commit or abort
keys = st.sampled_from(["a", "b", "c", "d", "e"])
operation = st.tuples(st.integers(0, 1), keys,
                      st.text(min_size=1, max_size=8))
batch = st.tuples(st.lists(operation, min_size=1, max_size=4),
                  st.booleans())  # commit?
batches = st.lists(batch, min_size=1, max_size=12)


def apply_model(model, ops):
    for kind, key, value in ops:
        if kind == 0:
            model[key] = value
        else:
            model.pop(key, None)


def run_engine(batches_value, checkpoint_every=None):
    """Run batches through a fresh engine; returns (devices, model)."""
    sim = Simulator(seed=5)
    wal_dev = MemoryBlockDevice(2048)
    data_dev = MemoryBlockDevice(64)
    db = MiniDB(sim, "db", wal_device=wal_dev, data_device=data_dev,
                bucket_count=4)
    model = {}

    def proc(sim):
        for index, (ops, commit) in enumerate(batches_value):
            txn = db.begin(f"t{index}")
            for kind, key, value in ops:
                if kind == 0:
                    yield from db.put(txn, key, value)
                else:
                    yield from db.delete(txn, key)
            if commit:
                yield from db.commit(txn)
            else:
                db.abort(txn)
            if checkpoint_every and (index + 1) % checkpoint_every == 0:
                yield from db.checkpoint()

    sim.run_until_complete(sim.spawn(proc(sim)))
    for ops, commit in batches_value:
        if commit:
            apply_model(model, ops)
    return sim, db, wal_dev, data_dev, model


class TestEngineMatchesModel:
    @given(batches_value=batches)
    @settings(max_examples=60, deadline=None)
    def test_committed_state_matches_model(self, batches_value):
        sim, db, _wal, _data, model = run_engine(batches_value)

        def reader(sim):
            state = {}
            for key in ["a", "b", "c", "d", "e"]:
                value = yield from db.read(key)
                if value is not None:
                    state[key] = value
            return state

        state = sim.run_until_complete(sim.spawn(reader(sim)))
        assert state == model

    @given(batches_value=batches,
           checkpoint_every=st.sampled_from([None, 1, 3]))
    @settings(max_examples=60, deadline=None)
    def test_recovery_matches_model(self, batches_value, checkpoint_every):
        """Recovery from the devices equals the committed model state,
        with or without interleaved checkpoints."""
        sim, _db, wal_dev, data_dev, model = run_engine(
            batches_value, checkpoint_every=checkpoint_every)
        recovered = sim.run_until_complete(sim.spawn(recover_database(
            sim, "db", wal_dev, data_dev, bucket_count=4)))
        assert recovered.state == model
        assert recovered.clean


class TestRecoveryPrefixSemantics:
    @given(batches_value=batches, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_wal_cut_recovers_a_committed_prefix(self, batches_value,
                                                 data):
        """Truncating the WAL at ANY point recovers the state of exactly
        the transactions whose commit record survived — in order."""
        sim, _db, wal_dev, data_dev, _model = run_engine(batches_value)
        total_blocks = len(wal_dev._blocks)
        cut = data.draw(st.integers(0, total_blocks), label="cut")
        wal_dev._blocks = {b: p for b, p in wal_dev._blocks.items()
                           if b < cut}
        # data device untouched: no checkpoints ran, it is empty
        recovered = sim.run_until_complete(sim.spawn(recover_database(
            sim, "db", wal_dev, data_dev, bucket_count=4)))
        # rebuild the expected state from the recovered committed set
        expected = {}
        for index, (ops, commit) in enumerate(batches_value):
            if commit and f"t{index}" in recovered.committed:
                apply_model(expected, ops)
        assert recovered.state == expected
        # the committed set is a prefix of the commit order
        committed_indexes = sorted(
            int(txn_id[1:]) for txn_id in recovered.committed)
        commit_order = [i for i, (_ops, commit)
                        in enumerate(batches_value) if commit]
        assert committed_indexes == \
            commit_order[:len(committed_indexes)]
