"""Property-based tests of the live ADC pipeline.

These run the real storage pipeline (journals, transfer, restore) on
randomized write workloads and disaster instants, asserting the
invariants the rest of the system is built on — complementing
``test_storage_properties.py``, which tests the checker's mathematics in
isolation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.checker import (check_storage_cut,
                                    image_versions_from_volumes)
from repro.simulation import NetworkLink, Simulator
from repro.storage import AdcConfig, ArrayConfig, StorageArray

write_plan = st.lists(
    st.tuples(st.integers(0, 2),     # volume index
              st.integers(0, 7),     # block
              st.floats(min_value=0.0002, max_value=0.004,
                        allow_nan=False)),  # inter-write delay
    min_size=5, max_size=50)


def build_pipeline(seed, consistency_group, restore_concurrency=1):
    sim = Simulator(seed=seed)
    adc = AdcConfig(transfer_interval=0.003, transfer_batch=64,
                    restore_interval=0.001, restore_batch=64,
                    interval_jitter=0.5,
                    restore_concurrency=restore_concurrency)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="M", config=config)
    backup = StorageArray(sim, serial="B", config=config)
    main_pool = main.create_pool(100_000)
    backup_pool = backup.create_pool(100_000)
    link = NetworkLink(sim, latency=0.002, jitter_fraction=0.3,
                       name="plink")
    pairs = {}
    for index in range(3):
        pvol = main.create_volume(main_pool.pool_id, 64)
        svol = backup.create_volume(backup_pool.pool_id, 64)
        group_id = "cg" if consistency_group else f"jg-{index}"
        if group_id not in main.journal_groups:
            mj = main.create_journal(main_pool.pool_id, 10_000)
            bj = backup.create_journal(backup_pool.pool_id, 10_000)
            main.create_journal_group(group_id, mj.journal_id, backup,
                                      bj.journal_id, link)
        main.create_async_pair(f"p{index}", group_id, pvol.volume_id,
                               backup, svol.volume_id)
        pairs[pvol.volume_id] = svol
    return sim, main, backup, pairs


class TestLivePipelineProperties:
    @given(plan=write_plan, disaster_frac=st.floats(0.1, 1.0),
           concurrency=st.sampled_from([1, 4]))
    @settings(max_examples=30, deadline=None)
    def test_cg_cut_is_always_consistent(self, plan, disaster_frac,
                                         concurrency):
        """With one consistency group, the backup image at ANY disaster
        instant is a consistent cut — regardless of workload shape,
        jitter, or restore concurrency."""
        sim, main, backup, pairs = build_pipeline(
            seed=11, consistency_group=True,
            restore_concurrency=concurrency)
        volumes = sorted(pairs)

        def writer(sim):
            for volume_index, block, delay in plan:
                yield from main.host_write(volumes[volume_index], block,
                                           b"x")
                yield sim.timeout(delay)

        proc = sim.spawn(writer(sim))
        total_time = sum(delay for _v, _b, delay in plan) + 0.05
        sim.run(until=sim.now + total_time * disaster_frac)
        # disaster: freeze everything, drain what reached the backup
        main.fail()
        for group in set(main.journal_groups.values()):
            group.stop()
        # wait out in-flight applies, then drain
        drain_done = []

        def drainer(sim):
            for group in set(main.journal_groups.values()):
                yield from group.drain()
            drain_done.append(True)

        sim.spawn(drainer(sim))
        sim.run(until=sim.now + 1.0)
        assert drain_done
        image = image_versions_from_volumes(pairs)
        report = check_storage_cut(main.history, image)
        assert report.consistent, str(report)

    @given(plan=write_plan)
    @settings(max_examples=20, deadline=None)
    def test_pipeline_converges_completely(self, plan):
        """Left alone, the pipeline delivers every write exactly."""
        sim, main, backup, pairs = build_pipeline(
            seed=12, consistency_group=True)
        volumes = sorted(pairs)

        def writer(sim):
            for volume_index, block, delay in plan:
                yield from main.host_write(volumes[volume_index], block,
                                           b"y")
                yield sim.timeout(delay)

        sim.run_until_complete(sim.spawn(writer(sim)))
        sim.run(until=sim.now + 2.0)
        for pvol_id, svol in pairs.items():
            assert svol.block_map() == \
                main.get_volume(pvol_id).block_map()
        image = image_versions_from_volumes(pairs)
        report = check_storage_cut(main.history, image)
        assert report.consistent
        assert report.missing_count == 0
