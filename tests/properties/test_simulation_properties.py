"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator


class TestEventOrdering:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                     allow_nan=False),
                           min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_callbacks_fire_in_time_order(self, delays):
        sim = Simulator(seed=1)
        fired = []
        for index, delay in enumerate(delays):
            sim.call_after(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=50,
                                     allow_nan=False),
                           min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_equal_times_fire_fifo(self, delays):
        sim = Simulator(seed=1)
        fired = []
        when = 5.0
        for index in range(len(delays)):
            sim.call_at(when, lambda i=index: fired.append(i))
        sim.run()
        assert fired == list(range(len(delays)))

    @given(delays=st.lists(st.floats(min_value=0.001, max_value=10,
                                     allow_nan=False),
                           min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_processes_observe_monotone_clock(self, delays):
        sim = Simulator(seed=1)
        observed = []

        def sleeper(sim, delay):
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.spawn(sleeper(sim, delay))
        sim.run()
        assert observed == sorted(observed)
        assert max(observed) == sim.now

    @given(chunks=st.lists(st.floats(min_value=0.01, max_value=5,
                                     allow_nan=False),
                           min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_tiled_runs_equal_one_run(self, chunks):
        """Running in arbitrary until-slices produces the same history
        as one run (the slicing axiom every experiment relies on)."""
        def program(sim):
            log = []

            def worker(sim, tag):
                for step in range(3):
                    yield sim.timeout(0.7 * (tag + 1))
                    log.append((tag, round(sim.now, 9)))

            for tag in range(3):
                sim.spawn(worker(sim, tag))
            return log

        sim_a = Simulator(seed=2)
        log_a = program(sim_a)
        sim_a.run()

        sim_b = Simulator(seed=2)
        log_b = program(sim_b)
        now = 0.0
        for chunk in chunks:
            now += chunk
            sim_b.run(until=now)
        sim_b.run()
        assert log_a == log_b


class TestConditionProperties:
    @given(count=st.integers(1, 15), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_all_of_fires_at_max_any_of_at_min(self, count, data):
        delays = data.draw(st.lists(
            st.floats(min_value=0.001, max_value=10, allow_nan=False),
            min_size=count, max_size=count))
        sim = Simulator(seed=3)
        outcome = {}

        def waiter(sim):
            events = [sim.timeout(d) for d in delays]
            yield sim.any_of(list(events))
            outcome["any_at"] = sim.now
            # the remaining timeouts keep running independently
            yield sim.all_of(list(events))
            outcome["all_at"] = sim.now

        sim.spawn(waiter(sim))
        sim.run()
        assert outcome["any_at"] == min(delays)
        assert outcome["all_at"] == max(delays)
