"""Property: NSO provisioning converges under arbitrary control-plane
fault interleavings.

Hypothesis draws random schedules of :class:`ControllerCrash` and
:class:`ApiFlake` faults and fires them *while* the namespace operator
and the replication plugin are still provisioning a freshly tagged
namespace — the worst possible moment, with finalizers half-attached,
pairs half-created and status half-written.  Whatever the interleaving,
once the storm ends the system must converge to exactly one ``Paired``
consistency group covering every claim, with no duplicate pairs, no
orphaned secondary volumes, no stray CRs — the reconcile-convergence
and exactly-once-pairing invariants, property-tested (PR 7 satellite).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ApiFlake, ControllerCrash
from repro.csi import (ConsistencyGroupReplication, STATE_PAIRED,
                       VolumeReplication)
from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.scenarios import build_system
from repro.simulation import Simulator
from tests.csi.conftest import create_pvc, fast_system_config

PVC_NAMES = ("sales-data", "stock-data")

#: one drawn fault: (kind, start, duration) — starts land inside the
#: provisioning window, durations keep the storm bounded
fault_schedules = st.lists(
    st.tuples(st.sampled_from(["controller-crash", "api-flake"]),
              st.floats(0.0, 1.5, allow_nan=False),
              st.floats(0.05, 1.0, allow_nan=False)),
    min_size=1, max_size=4)


class _Env:
    """Duck-typed subset of ChaosEnvironment the control faults use."""

    def __init__(self, sim, system):
        self.sim = sim
        self.system = system


def make_fault(kind, at, duration, flake, conflict):
    if kind == "controller-crash":
        return ControllerCrash(at, duration)
    return ApiFlake(at, duration, flake_probability=flake,
                    conflict_probability=conflict)


def drive_fault(env, fault):
    yield env.sim.timeout(fault.at)
    fault.inject(env)
    yield env.sim.timeout(fault.duration)
    fault.heal(env)


class TestProvisioningUnderControlChaos:
    @given(schedule=fault_schedules, seed=st.integers(0, 2 ** 16),
           flake=st.floats(0.05, 0.6), conflict=st.floats(0.0, 0.4))
    @settings(max_examples=25, deadline=None)
    def test_interleavings_converge_to_exactly_one_group(
            self, schedule, seed, flake, conflict):
        sim = Simulator(seed=seed)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        system.main.cluster.create_namespace("shop")
        for name in PVC_NAMES:
            create_pvc(system.main.cluster, "shop", name)

        # tag first, then unleash the storm mid-provisioning
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        env = _Env(sim, system)
        faults = [make_fault(kind, at, duration, flake, conflict)
                  for kind, at, duration in schedule]
        for index, fault in enumerate(faults):
            sim.spawn(drive_fault(env, fault), name=f"fault-{index}")
        storm_ends = max(fault.at + fault.duration for fault in faults)
        sim.run(until=storm_ends + 12.0)

        api = system.main.api
        # exactly one CR, owned by the operator, fully Paired
        crs = api.list(ConsistencyGroupReplication, namespace="shop")
        assert [cr.meta.name for cr in crs] == ["nso-shop"]
        cr = crs[0]
        assert cr.status.state == STATE_PAIRED, (
            cr.status.state, cr.status.message)
        assert sorted(cr.spec.pvc_names) == sorted(PVC_NAMES)

        # the NSO composes group CRs directly: per-volume CRs would be
        # orphans here
        assert api.list(VolumeReplication, namespace="shop") == []

        # exactly-once pairing on the array, whatever the interleaving
        pvol_ids = {}
        svol_ids = set()
        for group_id, group in sorted(
                system.main.array.journal_groups.items()):
            for pair_id, pair in sorted(group.pairs.items()):
                pvol_ids.setdefault(pair.pvol.volume_id, []).append(
                    f"{group_id}/{pair_id}")
                svol_ids.add(pair.svol.volume_id)
        assert all(len(pairs) == 1 for pairs in pvol_ids.values()), \
            pvol_ids
        assert len(pvol_ids) == len(PVC_NAMES)
        orphaned = [
            volume.name for volume in system.backup.array.list_volumes()
            if (volume.name or "").endswith("-svol")
            and volume.volume_id not in svol_ids]
        assert orphaned == []
