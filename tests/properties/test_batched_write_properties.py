"""Property: batched host writes are observationally equal to serial.

For any interleaving of ``host_write_many`` batches, snapshots and
clones, the batched run must produce the same WriteRecord sequence
(modulo ack timestamps), the same primary and drained backup images,
and the same clone images as issuing every write serially through
``host_write``.  This is the acceptance property of the batched ingest
path: batching is a latency optimisation, never a semantic change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator
from tests.storage.conftest import build_two_site, fast_adc, run

BLOCKS = 64

# a program is a list of ops:
#   ("write", [(volume_index, block, payload), ...])  — one batch
#   ("snap", volume_index)                            — snapshot now
#   ("clone",)                                        — clone newest snapshot
write_batches = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, BLOCKS - 1),
              st.binary(min_size=1, max_size=24)),
    min_size=1, max_size=12)

programs = st.lists(
    st.one_of(
        st.tuples(st.just("write"), write_batches),
        st.tuples(st.just("snap"), st.integers(0, 1)),
        st.tuples(st.just("clone")),
    ),
    min_size=1, max_size=10)


def volume_image(volume):
    return {block: (value.payload, value.version)
            for block, value in volume.block_map().items()}


def ack_projection(history):
    return [(r.seq, r.volume_id, r.block, r.version, r.tag)
            for r in history.records]


def execute(program, batched):
    """Run a program; returns (acks, pvol images, svol images, clones)."""
    sim = Simulator(seed=77)
    site = build_two_site(sim, adc=fast_adc())
    pvols = [site.main.create_volume(site.main_pool_id, BLOCKS)
             for _ in range(2)]
    svols = [site.backup.create_volume(site.backup_pool_id, BLOCKS)
             for _ in range(2)]
    main_jnl = site.main.create_journal(site.main_pool_id, 100_000)
    backup_jnl = site.backup.create_journal(site.backup_pool_id, 100_000)
    group = site.main.create_journal_group(
        "jg-prop", main_jnl.journal_id, site.backup,
        backup_jnl.journal_id, site.link)
    for index in range(2):
        site.main.create_async_pair(f"pair-{index}", "jg-prop",
                                    pvols[index].volume_id, site.backup,
                                    svols[index].volume_id)

    snapshots = []
    clone_images = []

    def driver():
        for op in program:
            if op[0] == "write":
                writes = [(pvols[volume_index].volume_id, block, payload)
                          for volume_index, block, payload in op[1]]
                if batched:
                    yield from site.main.host_write_many(writes)
                else:
                    for volume_id, block, payload in writes:
                        yield from site.main.host_write(volume_id, block,
                                                        payload)
            elif op[0] == "snap":
                snapshots.append(site.main.create_snapshot(
                    pvols[op[1]].volume_id))
            else:  # clone newest snapshot, if any exists yet
                if snapshots:
                    clone = site.main.clone_snapshot(
                        snapshots[-1].snapshot_id, site.main_pool_id)
                    clone_images.append(volume_image(clone))

    run(sim, driver())
    deadline = sim.now + 120.0
    while group.entry_lag and sim.now < deadline:
        sim.run(until=sim.now + 0.05)
    assert group.entry_lag == 0, "replication failed to drain"
    return (ack_projection(site.main.history),
            [volume_image(volume) for volume in pvols],
            [volume_image(volume) for volume in svols],
            clone_images)


class TestBatchedWritesEqualSerial:
    @given(program=programs)
    @settings(max_examples=15, deadline=None)
    def test_program_outcome_is_interleaving_independent(self, program):
        serial = execute(program, batched=False)
        batch = execute(program, batched=True)
        serial_acks, serial_pvols, serial_svols, serial_clones = serial
        batch_acks, batch_pvols, batch_svols, batch_clones = batch
        assert batch_acks == serial_acks
        assert batch_pvols == serial_pvols
        assert batch_svols == serial_svols
        assert batch_clones == serial_clones

    def test_cow_preserved_under_batch(self):
        """Deterministic COW check: a snapshot taken between batches
        sees pre-batch data even when the batch overwrites a block
        twice, exactly as a serial run would."""
        program = [
            ("write", [(0, 5, b"before")]),
            ("snap", 0),
            ("write", [(0, 5, b"mid"), (0, 5, b"after"), (0, 6, b"new")]),
            ("clone",),
        ]
        serial = execute(program, batched=False)
        batch = execute(program, batched=True)
        assert batch == serial
        [clone_image] = batch[3]
        assert clone_image[5] == (b"before", 1)
        assert 6 not in clone_image
