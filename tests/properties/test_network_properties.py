"""Property-based tests of the inter-site network link model.

Two promises the replication pipeline leans on:

* **FIFO wire** — propagation jitter may stretch or shrink individual
  delays, but it never delivers transfer N+1 before transfer N (the
  journal's sequence ordering depends on this);
* **prompt interruption** — a ``fail()`` wakes transfers sleeping in
  either the serialisation or the propagation leg at the failure
  instant, instead of letting them "complete" over a dead wire.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator
from repro.simulation.network import (LinkDownError, NetworkLink,
                                      TransferDroppedError)


def run(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestFifoOrdering:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           jitter=st.floats(min_value=0.1, max_value=0.9),
           gaps=st.lists(st.floats(min_value=0.0, max_value=0.002),
                         min_size=2, max_size=12))
    def test_jitter_never_reorders_arrivals(self, seed, jitter, gaps):
        sim = Simulator(seed=seed)
        link = NetworkLink(sim, latency=0.004, jitter_fraction=jitter,
                           name="fifo")
        arrivals = []

        def sender(index):
            yield from link.transfer(128)
            arrivals.append((index, sim.now))

        def staggered():
            for index, gap in enumerate(gaps):
                sim.spawn(sender(index))
                yield sim.timeout(gap)

        run(sim, staggered())
        sim.run(until=sim.now + 1.0)
        assert len(arrivals) == len(gaps)
        # completion order is start order, and times are monotone
        assert [index for index, _time in arrivals] == list(range(len(gaps)))
        times = [time for _index, time in arrivals]
        assert times == sorted(times)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           sizes=st.lists(st.integers(1, 4000), min_size=2, max_size=8))
    def test_fifo_holds_with_bandwidth_serialisation(self, seed, sizes):
        sim = Simulator(seed=seed)
        link = NetworkLink(sim, latency=0.003,
                           bandwidth_bytes_per_s=1_000_000,
                           jitter_fraction=0.5, name="fifo-bw")
        arrivals = []

        def sender(index, size):
            yield from link.transfer(size)
            arrivals.append(index)

        for index, size in enumerate(sizes):
            sim.spawn(sender(index, size))
        sim.run(until=sim.now + 1.0)
        assert arrivals == list(range(len(sizes)))


class TestMidFlightInterruption:
    # 60 bytes at 1000 B/s + 40 ms propagation: the transfer nominally
    # takes 100 ms, split across both legs
    LATENCY = 0.04
    BANDWIDTH = 1000.0
    PAYLOAD = 60

    def build(self, seed=3):
        sim = Simulator(seed=seed)
        link = NetworkLink(sim, latency=self.LATENCY,
                           bandwidth_bytes_per_s=self.BANDWIDTH,
                           name="cuttable")
        return sim, link

    @settings(max_examples=40, deadline=None)
    @given(fail_at=st.floats(min_value=0.001, max_value=0.099))
    def test_failure_observed_at_the_failure_instant(self, fail_at):
        """Covers both legs: fail_at < 60 ms cuts the serialisation leg,
        later instants cut the propagation leg."""
        sim, link = self.build()
        outcome = {}

        def sender():
            try:
                yield from link.transfer(self.PAYLOAD)
            except LinkDownError:
                outcome["failed_at"] = sim.now
            else:  # pragma: no cover - would mean the cut was missed
                outcome["completed_at"] = sim.now

        sim.spawn(sender())
        sim.run(until=fail_at)
        link.fail()
        sim.run(until=1.0)
        assert "completed_at" not in outcome
        assert outcome["failed_at"] == pytest.approx(fail_at)

    def test_transfer_completes_when_link_stays_up(self):
        sim, link = self.build()
        elapsed = run(sim, link.transfer(self.PAYLOAD))
        assert elapsed == pytest.approx(
            self.PAYLOAD / self.BANDWIDTH + self.LATENCY)

    def test_new_transfer_rejected_while_down(self):
        sim, link = self.build()
        link.fail()
        with pytest.raises(LinkDownError):
            run(sim, link.transfer(self.PAYLOAD))
        link.restore()
        assert run(sim, link.transfer(self.PAYLOAD)) > 0

    def test_brownout_drop_costs_the_full_delay(self):
        """A dropped transfer raises only after its nominal delay — the
        sender learns of the loss by timeout, like a real lost packet."""
        sim, link = self.build()
        link.degrade(loss_fraction=1.0)
        start = sim.now
        with pytest.raises(TransferDroppedError):
            run(sim, link.transfer(self.PAYLOAD))
        assert sim.now - start == pytest.approx(
            self.PAYLOAD / self.BANDWIDTH + self.LATENCY)
        assert link.transfers_dropped == 1
