"""Exhaustive crash-cut testing of the 2PC + WAL design.

The consistency group's guarantee is: the backup image equals *some
prefix of the global write order*.  This test enumerates EVERY such
prefix of a real multi-order 2PC run and verifies that recovery always
produces a consistent business state — i.e. the application stack is
correct under the exact guarantee the storage layer provides, so any
collapse seen in the integration experiments is attributable to the
storage configuration (no consistency group), not to the database.
"""

import pytest

from repro.apps import CatalogItem, EcommerceApp
from repro.apps.analytics import recover_business_images, DatabaseImage
from repro.apps.ecommerce import decode_business_state
from repro.apps.minidb import MemoryBlockDevice, MiniDB
from repro.recovery.checker import check_business_invariants
from repro.simulation import Simulator


class TracingDevice(MemoryBlockDevice):
    """Memory device that appends every write to a shared global trace."""

    def __init__(self, name, trace, capacity_blocks=512):
        super().__init__(capacity_blocks)
        self.name = name
        self._trace = trace

    def write_block(self, block, payload, tag=None):
        self._trace.append((self.name, block, bytes(payload)))
        result = yield from super().write_block(block, payload, tag=tag)
        return result


def run_orders(order_count=4, seed=3):
    """Run seed + orders; returns (trace, seed_watermark, catalog,
    committed gtids).  Cuts before ``seed_watermark`` are pre-seed
    images (the business did not exist yet) and are not asserted."""
    sim = Simulator(seed=seed)
    trace = []
    devices = {
        name: TracingDevice(name, trace)
        for name in ("sales-wal", "sales-data", "stock-wal", "stock-data")}
    sales = MiniDB(sim, "sales", wal_device=devices["sales-wal"],
                   data_device=devices["sales-data"], bucket_count=4)
    stock = MiniDB(sim, "stock", wal_device=devices["stock-wal"],
                   data_device=devices["stock-data"], bucket_count=4)
    catalog = [CatalogItem("widget", 100, 10.0),
               CatalogItem("gadget", 100, 25.0)]
    app = EcommerceApp(sales, stock, catalog)
    seed_watermark = []

    def proc(sim):
        yield from app.seed()
        seed_watermark.append(len(trace))
        for index in range(order_count):
            item = "widget" if index % 2 == 0 else "gadget"
            yield from app.place_order(item, 1 + index % 2)

    sim.run_until_complete(sim.spawn(proc(sim)))
    return trace, seed_watermark[0], catalog, \
        list(app.coordinator.committed_gtids)


def materialise(trace, cut):
    """Device images containing exactly the first ``cut`` writes."""
    devices = {name: MemoryBlockDevice(512)
               for name in ("sales-wal", "sales-data", "stock-wal",
                            "stock-data")}
    for name, block, payload in trace[:cut]:
        devices[name]._blocks[block] = payload
    return devices


class TestEveryPrefixCutRecovers:
    def test_all_cuts_consistent(self):
        trace, seed_watermark, catalog, committed = run_orders()
        assert len(trace) > 30  # the run is non-trivial
        sim = Simulator(seed=9)
        recovered_counts = []
        for cut in range(seed_watermark, len(trace) + 1):
            devices = materialise(trace, cut)
            sales_image = DatabaseImage(
                wal_device=devices["sales-wal"],
                data_device=devices["sales-data"], bucket_count=4)
            stock_image = DatabaseImage(
                wal_device=devices["stock-wal"],
                data_device=devices["stock-data"], bucket_count=4)
            sales_rec, stock_rec = sim.run_until_complete(sim.spawn(
                recover_business_images(sim, sales_image, stock_image)))
            business = decode_business_state(sales_rec.state,
                                             stock_rec.state)
            report = check_business_invariants(business, catalog)
            assert report.consistent, (
                f"prefix cut at write #{cut} recovered inconsistently: "
                f"{[str(v) for v in report.violations]}")
            recovered_counts.append(report.order_count)
        # the recovered order count is monotone in the cut and ends with
        # every committed order present
        assert recovered_counts == sorted(recovered_counts)
        assert recovered_counts[0] == 0
        assert recovered_counts[-1] == len(committed)

    def test_non_prefix_cut_is_caught(self):
        """Sanity check of the method: advancing only the stock WAL past
        the cut (a non-prefix image) must violate the invariants."""
        trace, seed_watermark, catalog, committed = run_orders()
        # find a cut inside the commit region of some order, then add
        # every *stock-wal* write after it: stock runs ahead of sales
        sim = Simulator(seed=10)
        violations_seen = 0
        for cut in range(seed_watermark, len(trace) - 5):
            devices = materialise(trace, cut)
            for name, block, payload in trace[cut:]:
                if name == "stock-wal":
                    devices["stock-wal"]._blocks[block] = payload
            sales_image = DatabaseImage(
                wal_device=devices["sales-wal"],
                data_device=devices["sales-data"], bucket_count=4)
            stock_image = DatabaseImage(
                wal_device=devices["stock-wal"],
                data_device=devices["stock-data"], bucket_count=4)
            sales_rec, stock_rec = sim.run_until_complete(sim.spawn(
                recover_business_images(sim, sales_image, stock_image)))
            business = decode_business_state(sales_rec.state,
                                             stock_rec.state)
            report = check_business_invariants(business, catalog)
            if not report.consistent:
                violations_seen += 1
        assert violations_seen > 0, (
            "a stock-WAL-ahead image never violated the invariants; "
            "the checker or the test harness is broken")
