"""End-to-end tests of the namespace operator: tag -> configured backup.

This is the paper's §IV-B demonstration as assertions: the user tags a
namespace, the operator discovers the volumes and creates the custom
resource, the replication plugin configures the array, and PVs appear at
the backup site.
"""

import pytest

from repro.csi import ConsistencyGroupReplication, STATE_PAIRED
from repro.operator import (ANNOTATION_STATE, NS_STATE_NO_VOLUMES,
                            NS_STATE_PROTECTED, OWNED_BY_LABEL,
                            TAG_CONSISTENT, TAG_INDEPENDENT, TAG_KEY,
                            install_namespace_operator)
from repro.platform import Namespace, PersistentVolume
from tests.csi.conftest import create_pvc, fast_system_config


@pytest.fixture()
def system(sim):
    from repro.scenarios import build_system
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)
    return system


@pytest.fixture()
def sim():
    from repro.simulation import Simulator
    return Simulator(seed=41)


def make_business_namespace(sim, system, namespace="shop",
                            pvcs=("sales-data", "stock-data")):
    system.main.cluster.create_namespace(namespace)
    for name in pvcs:
        create_pvc(system.main.cluster, namespace, name)
    sim.run(until=sim.now + 1.0)  # let provisioning finish


class TestTagDrivenConfiguration:
    def test_one_tag_configures_everything(self, sim, system):
        """Fig 3: the single user operation is the tag."""
        make_business_namespace(sim, system)
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "nso-shop",
                                 "shop")
        assert cr.meta.labels[OWNED_BY_LABEL] == "namespace-operator"
        assert cr.spec.pvc_names == ["sales-data", "stock-data"]
        assert cr.spec.consistency_group
        assert cr.status.state == STATE_PAIRED
        ns = system.main.api.get(Namespace, "shop")
        assert ns.meta.annotations[ANNOTATION_STATE] == NS_STATE_PROTECTED

    def test_pvs_appear_at_backup_site_after_tagging(self, sim, system):
        """The Fig 3 -> Fig 4 transition, end to end through the NSO."""
        make_business_namespace(sim, system)
        assert system.backup.console.list_persistent_volumes() == []
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        pvs = system.backup.console.list_persistent_volumes()
        assert sorted(pv.spec.claim_ref for pv in pvs) == [
            "shop/sales-data", "shop/stock-data"]

    def test_user_performed_exactly_one_operation(self, sim, system):
        """The automation claim: one console op, zero array surface ops."""
        make_business_namespace(sim, system)
        before = system.main.console.operation_count()
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        assert system.main.console.operation_count() == before + 1
        assert system.main.console.operation_count("storage-array") == 0
        cr = system.main.api.get(ConsistencyGroupReplication, "nso-shop",
                                 "shop")
        assert cr.status.state == STATE_PAIRED

    def test_independent_tag_creates_private_journals(self, sim, system):
        make_business_namespace(sim, system)
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_INDEPENDENT)
        sim.run(until=sim.now + 4.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "nso-shop",
                                 "shop")
        assert not cr.spec.consistency_group
        assert len(cr.status.journal_groups) == 2

    def test_unknown_tag_value_is_ignored(self, sim, system):
        make_business_namespace(sim, system)
        system.main.console.tag_namespace("shop", TAG_KEY, "Nonsense")
        sim.run(until=sim.now + 2.0)
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "nso-shop", "shop") is None

    def test_namespace_without_volumes_reports_state(self, sim, system):
        system.main.cluster.create_namespace("empty-ns")
        system.main.console.tag_namespace("empty-ns", TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 2.0)
        ns = system.main.api.get(Namespace, "empty-ns")
        assert ns.meta.annotations[ANNOTATION_STATE] == NS_STATE_NO_VOLUMES


class TestLifecycle:
    def test_untagging_tears_down_protection(self, sim, system):
        make_business_namespace(sim, system)
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        system.main.console.untag_namespace("shop", TAG_KEY)
        sim.run(until=sim.now + 4.0)
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "nso-shop", "shop") is None
        assert system.main.array.find_pair("shop/nso-shop/sales-data") \
            is None
        assert system.backup.api.list(PersistentVolume) == []
        ns = system.main.api.get(Namespace, "shop")
        assert ANNOTATION_STATE not in ns.meta.annotations

    def test_new_pvc_joins_existing_protection(self, sim, system):
        """The operator keeps the CR in sync as claims come and go."""
        make_business_namespace(sim, system)
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        create_pvc(system.main.cluster, "shop", "audit-log")
        sim.run(until=sim.now + 4.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "nso-shop",
                                 "shop")
        assert "audit-log" in cr.spec.pvc_names
        assert cr.status.state == STATE_PAIRED
        assert cr.status.pair_states["audit-log"] == "PAIR"

    def test_operator_does_not_touch_foreign_crs(self, sim, system):
        """Untagging must not delete CRs the operator does not own."""
        make_business_namespace(sim, system)
        foreign = ConsistencyGroupReplication()
        foreign.meta.name = "nso-shop"  # same name, but no owned-by label
        foreign.meta.namespace = "shop"
        foreign.spec.pvc_names = ["sales-data"]
        system.main.api.create(foreign)
        sim.run(until=sim.now + 2.0)
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 2.0)
        system.main.console.untag_namespace("shop", TAG_KEY)
        sim.run(until=sim.now + 2.0)
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "nso-shop", "shop") is not None

    def test_tag_before_volumes_waits_then_configures(self, sim, system):
        system.main.cluster.create_namespace("shop")
        system.main.console.tag_namespace("shop", TAG_KEY, TAG_CONSISTENT)
        sim.run(until=sim.now + 1.0)
        create_pvc(system.main.cluster, "shop", "sales-data")
        sim.run(until=sim.now + 5.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "nso-shop",
                                 "shop")
        assert cr.status.state == STATE_PAIRED
