"""End-to-end tests of the SuspendCopyToCloud maintenance tag."""

import pytest

from repro.apps import issue_orders
from repro.csi import ConsistencyGroupReplication, STATE_PAIRED
from repro.operator import (ANNOTATION_STATE, NS_STATE_PROTECTED,
                            NS_STATE_SUSPENDED, TAG_CONSISTENT, TAG_KEY,
                            TAG_SUSPEND, install_namespace_operator)
from repro.platform import Namespace
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator
from repro.storage import PairState
from tests.csi.conftest import fast_system_config


@pytest.fixture()
def protected():
    sim = Simulator(seed=190)
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=30_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)
    return sim, system, business


def group_of(system, business):
    return system.main.array.journal_groups[
        f"jg-{business.namespace}-nso-{business.namespace}"]


class TestSuspendResume:
    def test_suspend_tag_splits_the_pairs(self, protected):
        sim, system, business = protected
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_SUSPEND)
        sim.run(until=sim.now + 3.0)
        group = group_of(system, business)
        assert group.suspended
        assert {pair.state for pair in group.pairs.values()} == \
            {PairState.PSUS}
        ns = system.main.api.get(Namespace, business.namespace)
        assert ns.meta.annotations[ANNOTATION_STATE] == \
            NS_STATE_SUSPENDED

    def test_writes_continue_unprotected_while_suspended(self, protected):
        sim, system, business = protected
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_SUSPEND)
        sim.run(until=sim.now + 3.0)
        results = issue_orders(sim, business.app, 10,
                               rng_stream="suspended")
        assert all(r.accepted for r in results)
        group = group_of(system, business)
        dirty = sum(len(pair.dirty_blocks)
                    for pair in group.pairs.values())
        assert dirty > 0

    def test_resume_resynchronises_and_converges(self, protected):
        sim, system, business = protected
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_SUSPEND)
        sim.run(until=sim.now + 3.0)
        issue_orders(sim, business.app, 10, rng_stream="during")
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 5.0)
        group = group_of(system, business)
        assert not group.suspended
        assert {pair.state for pair in group.pairs.values()} == \
            {PairState.PAIR}
        ns = system.main.api.get(Namespace, business.namespace)
        assert ns.meta.annotations[ANNOTATION_STATE] == \
            NS_STATE_PROTECTED
        # the dirty delta reached the backup
        for pair in group.pairs.values():
            assert pair.svol.block_map() == pair.pvol.block_map()
        cr = system.main.api.get(ConsistencyGroupReplication,
                                 f"nso-{business.namespace}",
                                 business.namespace)
        assert cr.status.state == STATE_PAIRED
        assert not cr.spec.suspended

    def test_suspend_without_protection_reports(self):
        sim = Simulator(seed=191)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        system.main.cluster.create_namespace("bare")
        system.main.console.tag_namespace("bare", TAG_KEY, TAG_SUSPEND)
        sim.run(until=sim.now + 2.0)
        ns = system.main.api.get(Namespace, "bare")
        assert ns.meta.annotations[ANNOTATION_STATE] == \
            NS_STATE_SUSPENDED
        assert "not protected" in ns.meta.annotations[
            "backup.hitachi.com/message"]
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "nso-bare", "bare") is None
