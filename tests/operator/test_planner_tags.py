"""Unit tests for the operator's pure logic: tags and planning."""

from repro.operator import (BackupMode, TAG_CONSISTENT, TAG_INDEPENDENT,
                            parse_tag, plan_backup, plan_differs)
from tests.platform.conftest import make_pvc


class TestTagParsing:
    def test_consistent_tag(self):
        assert parse_tag(TAG_CONSISTENT) is BackupMode.CONSISTENT_GROUP

    def test_independent_tag(self):
        assert parse_tag(TAG_INDEPENDENT) is BackupMode.INDEPENDENT

    def test_absent_tag(self):
        assert parse_tag(None) is None

    def test_unknown_value_ignored(self):
        assert parse_tag("SomebodyElsesLabel") is None

    def test_mode_properties(self):
        assert BackupMode.CONSISTENT_GROUP.uses_consistency_group
        assert not BackupMode.INDEPENDENT.uses_consistency_group


def bound(pvc):
    pvc.spec.volume_name = f"pv-{pvc.meta.name}"
    pvc.status.phase = "Bound"
    return pvc


class TestPlanner:
    def test_plan_collects_bound_claims_sorted(self):
        claims = [bound(make_pvc("shop", "stock")),
                  bound(make_pvc("shop", "sales"))]
        plan = plan_backup("shop", BackupMode.CONSISTENT_GROUP, claims)
        assert plan.pvc_names == ("sales", "stock")
        assert plan.complete
        assert not plan.empty
        assert plan.cr_name() == "nso-shop"

    def test_unbound_claims_block_completion(self):
        claims = [bound(make_pvc("shop", "sales")),
                  make_pvc("shop", "pending")]
        plan = plan_backup("shop", BackupMode.CONSISTENT_GROUP, claims)
        assert not plan.complete
        assert plan.unbound_pvc_names == ("pending",)

    def test_deleting_claims_excluded(self):
        doomed = bound(make_pvc("shop", "old"))
        doomed.meta.deletion_time = 5.0
        plan = plan_backup("shop", BackupMode.CONSISTENT_GROUP,
                           [doomed, bound(make_pvc("shop", "live"))])
        assert plan.pvc_names == ("live",)

    def test_empty_namespace(self):
        plan = plan_backup("shop", BackupMode.CONSISTENT_GROUP, [])
        assert plan.empty
        assert plan.complete

    def test_plan_differs_on_membership(self):
        plan = plan_backup("shop", BackupMode.CONSISTENT_GROUP,
                           [bound(make_pvc("shop", "a")),
                            bound(make_pvc("shop", "b"))])
        assert not plan_differs(plan, ["b", "a"], True)
        assert plan_differs(plan, ["a"], True)
        assert plan_differs(plan, ["a", "b", "c"], True)

    def test_plan_differs_on_mode(self):
        plan = plan_backup("shop", BackupMode.INDEPENDENT,
                           [bound(make_pvc("shop", "a"))])
        assert plan_differs(plan, ["a"], True)
        assert not plan_differs(plan, ["a"], False)
