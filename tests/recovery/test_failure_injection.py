"""Failure-injection tests: link flaps, journal exhaustion, and
suspension/resync under live business load."""

import pytest

from repro.apps import BackgroundLoad, issue_orders
from repro.csi.crds import ConsistencyGroupReplication
from repro.operator import TAG_CONSISTENT, TAG_KEY, \
    install_namespace_operator
from repro.recovery import fail_and_recover
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator
from repro.storage import PairState
from tests.csi.conftest import fast_system_config


def protected(seed, adc_overrides=None, wal_blocks=20_000):
    sim = Simulator(seed=seed)
    config = fast_system_config()
    if adc_overrides:
        config = config.with_adc(**adc_overrides)
    system = build_system(sim, config)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=wal_blocks))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)
    return sim, system, business


def group_of(system, business):
    return system.main.array.journal_groups[
        f"jg-{business.namespace}-nso-{business.namespace}"]


class TestLinkFlaps:
    def test_replication_converges_after_repeated_partitions(self):
        """Orders run through several link outages; once the link heals,
        the backup catches up completely and stays consistent."""
        sim, system, business = protected(seed=110)
        load = BackgroundLoad(sim, business.app, client_count=4)
        for _ in range(3):
            sim.run(until=sim.now + 0.10)
            system.replication_link.fail()
            sim.run(until=sim.now + 0.10)
            system.replication_link.restore()
        sim.run(until=sim.now + 0.10)
        load.drain()
        sim.run(until=sim.now + 2.0)  # catch up
        group = group_of(system, business)
        assert group.entry_lag == 0
        promoted = fail_and_recover(system, business)
        assert promoted.report.business_report.consistent
        assert promoted.report.lost_committed_orders == 0

    def test_business_never_blocks_during_partition(self):
        """The ADC promise under failure: a dead replication link does
        not slow the business down at all."""
        sim, system, business = protected(seed=111)
        healthy = issue_orders(sim, business.app, 20,
                               rng_stream="healthy")
        system.replication_link.fail()
        partitioned = issue_orders(sim, business.app, 20,
                                   rng_stream="partitioned")
        healthy_mean = sum(r.latency for r in healthy) / len(healthy)
        partitioned_mean = sum(r.latency for r in partitioned) \
            / len(partitioned)
        assert partitioned_mean == pytest.approx(healthy_mean,
                                                 rel=0.25)


class TestJournalExhaustion:
    def test_overflow_suspends_then_resync_heals(self):
        """A journal sized too small for a partition overflows; pairs go
        PSUE, writes continue unprotected (fence never), and a resync
        after the repair converges the mirror."""
        sim, system, business = protected(
            seed=112,
            adc_overrides=dict(transfer_interval=0.001,
                               interval_jitter=0.0))
        group = group_of(system, business)
        # shrink effective capacity by filling the journal while cut off
        system.replication_link.fail()
        # drive writes until the (large) journal would hold them all;
        # instead force the suspension path directly via a small journal:
        group.main_journal.capacity_entries = len(group.main_journal) + 50
        results = issue_orders(sim, business.app, 30,
                               rng_stream="overflow")
        assert all(r.accepted for r in results)  # fence level "never"
        states = {pair.state for pair in group.pairs.values()}
        assert states == {PairState.PSUE}
        cr = system.main.api.get(
            ConsistencyGroupReplication, f"nso-{business.namespace}",
            business.namespace)
        # the plugin's status poll surfaces the suspension
        sim.run(until=sim.now + 2.0)
        cr = system.main.api.get(
            ConsistencyGroupReplication, f"nso-{business.namespace}",
            business.namespace)
        assert cr.status.state == "Suspended"
        # repair: restore the link, give the journal room, resync
        system.replication_link.restore()
        group.main_journal.capacity_entries += 100_000
        sim.run_until_complete(sim.spawn(group.resync()))
        sim.run(until=sim.now + 2.0)
        assert {pair.state for pair in group.pairs.values()} == \
            {PairState.PAIR}
        promoted = fail_and_recover(system, business)
        assert promoted.report.business_report.consistent
        assert promoted.report.lost_committed_orders == 0

    def test_wal_exhaustion_is_a_clean_database_error(self):
        """Undersized WAL volumes fail loudly, not corruptly."""
        from repro.errors import DatabaseError
        sim, system, business = protected(seed=113, wal_blocks=120)

        def burn(sim):
            while True:
                yield from business.app.place_order("item-000", 1)

        proc = sim.spawn(burn(sim))
        sim.run(until=sim.now + 5.0)
        with pytest.raises(DatabaseError):
            _ = proc.result


class TestDisasterDuringTwoPhaseCommit:
    def test_inflight_transactions_resolve_consistently(self):
        """Disaster with 2PC transactions mid-protocol: the recovered
        image resolves every in-doubt branch and stays consistent."""
        for seed in (120, 121, 122):
            sim, system, business = protected(
                seed=seed,
                adc_overrides=dict(transfer_interval=0.003,
                                   interval_jitter=0.5))
            load = BackgroundLoad(sim, business.app, client_count=8)
            # stop mid-flight: clients are inside place_order right now
            sim.run(until=sim.now + 0.123)
            committed = load.committed_gtids
            promoted = fail_and_recover(system, business,
                                        expected_committed=committed)
            report = promoted.report
            assert report.business_report.consistent
            # nothing that committed before the journal cut is lost,
            # nothing uncommitted is resurrected
            assert report.business_report.order_count <= len(committed) \
                + 8  # at most the in-flight orders may have landed too
