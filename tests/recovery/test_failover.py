"""Integration tests: disaster + failover of the full business process.

These are the paper's headline behaviours end to end: with the
consistency group the backup always recovers to a consistent business
state with bounded loss; without it, collapse is observable.
"""

import pytest

from repro.errors import CollapsedBackupError, FailoverError
from repro.apps import issue_orders
from repro.operator import (TAG_CONSISTENT, TAG_INDEPENDENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery import FailoverManager, fail_and_recover
from repro.scenarios import (BusinessConfig, build_system,
                             deploy_business_process)
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config


def protected_business(seed=61, tag=TAG_CONSISTENT, orders=40,
                       config_overrides=None):
    """Build system + business process, protect it, run some orders."""
    sim = Simulator(seed=seed)
    overrides = config_overrides or {}
    system = build_system(sim, fast_system_config(**overrides))
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY, tag)
    sim.run(until=sim.now + 4.0)  # initial copy settles
    results = issue_orders(sim, business.app, orders)
    assert all(r.accepted for r in results)
    return sim, system, business, results


class TestConsistentFailover:
    def test_failover_after_quiesce_recovers_everything(self):
        sim, system, business, results = protected_business()
        sim.run(until=sim.now + 2.0)  # replication fully caught up
        promoted = fail_and_recover(system, business)
        report = promoted.report
        assert report.succeeded
        assert report.business_report.consistent
        assert report.lost_committed_orders == 0
        assert report.lost_acked_writes == 0
        assert report.storage_report.consistent
        assert report.rto_seconds > 0

    def test_failover_mid_replication_is_consistent_with_bounded_loss(self):
        """Disaster while the journal still holds unshipped entries: some
        committed orders are lost (RPO > 0) but the image is consistent."""
        sim, system, business, results = protected_business(seed=62)
        # fail immediately: journal lag is non-trivial
        promoted = fail_and_recover(system, business)
        report = promoted.report
        assert report.succeeded
        assert report.business_report.consistent
        assert report.storage_report.consistent
        assert report.lost_committed_orders >= 0
        recovered_orders = report.business_report.order_count
        assert recovered_orders + report.lost_committed_orders == \
            len(results)

    def test_recovered_app_serves_new_orders(self):
        sim, system, business, _results = protected_business(seed=63,
                                                             orders=10)
        sim.run(until=sim.now + 2.0)
        promoted = fail_and_recover(system, business)
        new_results = issue_orders(sim, promoted.app, 5,
                                   rng_stream="post-failover")
        assert all(r.accepted for r in new_results)
        assert promoted.app.orders_accepted == 5

    def test_drain_applies_backup_journal(self):
        sim, system, business, _results = protected_business(seed=64)
        promoted = fail_and_recover(system, business)
        # with a disaster under load, the drain typically has work to do;
        # at minimum it must never be negative and the report is coherent
        assert promoted.report.drained_entries >= 0
        assert promoted.report.completed_at >= promoted.report.started_at


def business_under_load(seed, tag, load_time=0.4, clients=6):
    """Protected business with concurrent load in flight at disaster.

    Collapse needs realism the quiet tests avoid: concurrent
    transactions and independently drifting journal transfer loops
    (interval jitter on), so the per-volume cuts interleave mid-stream.
    """
    from repro.apps import BackgroundLoad
    sim = Simulator(seed=seed)
    config = fast_system_config().with_adc(
        transfer_interval=0.004, interval_jitter=0.6)
    system = build_system(sim, config)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY, tag)
    sim.run(until=sim.now + 4.0)
    load = BackgroundLoad(sim, business.app, client_count=clients)
    sim.run(until=sim.now + load_time)
    committed = load.committed_gtids
    return sim, system, business, committed


class TestCollapseWithoutConsistencyGroup:
    SEEDS = range(70, 80)

    def test_independent_journals_collapse_under_load(self):
        """The §I failure: with per-volume journals, at some disaster
        instants the backup admits no consistent recovery."""
        collapsed = 0
        for seed in self.SEEDS:
            sim, system, business, committed = business_under_load(
                seed, TAG_INDEPENDENT)
            try:
                fail_and_recover(system, business,
                                 expected_committed=committed)
            except CollapsedBackupError:
                collapsed += 1
        assert collapsed > 0, (
            "independent journals never produced an unrecoverable backup "
            "across the scanned disaster instants — the baseline is not "
            "reproducing the paper's failure mode")

    def test_consistency_group_never_collapses_same_instants(self):
        """Control: identical seeds, load and disaster instants, but with
        the consistency group — zero collapses, bounded loss only."""
        for seed in self.SEEDS:
            sim, system, business, committed = business_under_load(
                seed, TAG_CONSISTENT)
            promoted = fail_and_recover(system, business,
                                        expected_committed=committed)
            assert promoted.report.business_report.consistent
            assert promoted.report.storage_report.consistent


class TestFailoverValidation:
    def test_failover_without_protection_fails(self):
        sim = Simulator(seed=90)
        system = build_system(sim, fast_system_config())
        business = deploy_business_process(
            system, BusinessConfig(wal_blocks=20_000))
        system.fail_main_site()
        manager = FailoverManager(system, business.namespace)
        process = sim.spawn(manager.execute(
            catalog=list(business.app.catalog.values())))
        sim.run(until=sim.now + 2.0)
        with pytest.raises(FailoverError):
            _ = process.result

    def test_discovery_finds_all_four_volumes(self):
        sim, system, business, _results = protected_business(seed=91,
                                                             orders=5)
        manager = FailoverManager(system, business.namespace)
        mapping = manager.discover_secondary_volumes()
        assert sorted(mapping) == ["sales-data", "sales-wal",
                                   "stock-data", "stock-wal"]
