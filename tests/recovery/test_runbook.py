"""Crash-restartable runbooks: unit semantics and the interrupted-
failover equivalence acceptance test.

The acceptance bar (ISSUE PR 7): a ``FailoverManager`` killed at
*every* step boundary and resumed by a fresh manager must produce
byte-identical promoted volume images, identical per-step duration
accounting, and the same RPO/RTO numbers as the uninterrupted run.
"""

import pytest

from repro.errors import RunbookInterrupted
from repro.recovery import FailbackManager, Runbook, RunbookJournal
from repro.simulation import Simulator
from tests.recovery.interrupt_harness import (FAILOVER_STEPS,
                                              run_interrupted_failover,
                                              run_uninterrupted_failover)
from tests.recovery.test_failback import disaster_then_serve_at_backup


def run_step(sim, runbook, name, fn, volatile=False):
    process = sim.spawn(runbook.step(name, fn, volatile=volatile),
                        name=f"step-{name}")
    return sim.run_until_complete(process)


class TestRunbook:
    def test_checkpointed_step_runs_exactly_once(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()
        calls = []
        first = Runbook(sim, "proc", journal=journal)
        payload = run_step(sim, first, "promote",
                           lambda: calls.append("x") or {"svols": [7, 9]})
        assert payload == {"svols": [7, 9]}

        resumed = Runbook(sim, "proc", journal=journal)
        assert resumed.resumed
        replayed = run_step(sim, resumed, "promote",
                            lambda: calls.append("x"))
        # the persisted payload comes back; the side effect never re-ran
        assert replayed == {"svols": [7, 9]}
        assert calls == ["x"]
        registry = sim.telemetry.registry
        assert registry.counter("repro_runbook_steps_skipped_total",
                                runbook="proc").value == 1
        assert registry.counter("repro_runbook_resumes_total",
                                runbook="proc").value == 1

    def test_volatile_step_reruns_on_resume(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()
        calls = []
        first = Runbook(sim, "proc", journal=journal)
        run_step(sim, first, "verify", lambda: calls.append("a"),
                 volatile=True)
        resumed = Runbook(sim, "proc", journal=journal)
        run_step(sim, resumed, "verify", lambda: calls.append("b"),
                 volatile=True)
        assert calls == ["a", "b"]
        # volatile payloads are never persisted to the journal
        assert journal.load("proc").steps["verify"].payload is None

    def test_crash_after_fires_after_the_checkpoint_is_durable(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()
        runbook = Runbook(sim, "proc", journal=journal,
                          crash_after="drain")
        with pytest.raises(RunbookInterrupted) as exc_info:
            run_step(sim, runbook, "drain", lambda: 42)
        assert exc_info.value.step == "drain"
        # the step completed and checkpointed before the crash: a
        # successor skips it and sees the payload
        record = journal.load("proc").steps["drain"]
        assert record.payload == 42

    def test_generator_steps_consume_simulated_time(self):
        sim = Simulator(seed=1)
        runbook = Runbook(sim, "proc")

        def slow_step():
            yield sim.timeout(0.250)
            return "done"

        assert run_step(sim, runbook, "drain", slow_step) == "done"
        assert runbook.step_durations()["drain"] == pytest.approx(0.250)

    def test_resumed_run_reports_the_original_durations(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()

        def slow(delay):
            def step():
                yield sim.timeout(delay)
                return delay
            return step

        first = Runbook(sim, "proc", journal=journal, crash_after="two")
        run_step(sim, first, "one", slow(0.100))
        with pytest.raises(RunbookInterrupted):
            run_step(sim, first, "two", slow(0.300))
        sim.run(until=sim.now + 5.0)  # dead time before the resume

        resumed = Runbook(sim, "proc", journal=journal)
        run_step(sim, resumed, "one", slow(0.100))  # skipped
        run_step(sim, resumed, "two", slow(0.300))  # skipped
        run_step(sim, resumed, "three", slow(0.200))
        durations = resumed.step_durations()
        assert list(durations) == ["one", "two", "three"]
        assert durations["one"] == pytest.approx(0.100)
        assert durations["two"] == pytest.approx(0.300)
        assert durations["three"] == pytest.approx(0.200)
        assert resumed.state.incarnation == 1
        assert resumed.state.steps["two"].incarnation == 0
        assert resumed.state.steps["three"].incarnation == 1

    def test_journal_payloads_are_isolated_copies(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()
        runbook = Runbook(sim, "proc", journal=journal)
        payload = run_step(sim, runbook, "discover",
                           lambda: {"sales": 7})
        payload["sales"] = 999  # the caller scribbles on its copy
        assert journal.load("proc").steps["discover"].payload == \
            {"sales": 7}

    def test_finish_discards_the_journal_entry(self):
        sim = Simulator(seed=1)
        journal = RunbookJournal()
        runbook = Runbook(sim, "proc", journal=journal)
        run_step(sim, runbook, "only", lambda: None)
        assert "proc" in journal
        runbook.finish()
        assert "proc" not in journal
        assert not Runbook(sim, "proc", journal=journal).resumed


@pytest.fixture(scope="module")
def baseline():
    return run_uninterrupted_failover(seed=61)


class TestInterruptedFailoverEquivalence:
    def test_step_catalog_matches_the_manager(self, baseline):
        # keeps FAILOVER_STEPS honest: a step added to or renamed in
        # FailoverManager.execute must show up here to stay covered
        assert tuple(baseline.report.step_durations) == FAILOVER_STEPS

    @pytest.mark.parametrize("step", FAILOVER_STEPS)
    def test_resume_is_equivalent_at_every_boundary(self, baseline, step):
        resumed = run_interrupted_failover(seed=61, crash_after=step)
        assert resumed.report.resumed
        assert not baseline.report.resumed
        # byte-identical promoted images
        assert resumed.images == baseline.images
        # identical per-step wall-clock accounting
        assert resumed.report.step_durations == \
            baseline.report.step_durations
        # identical RPO/RTO bookkeeping
        assert resumed.report.lost_acked_writes == \
            baseline.report.lost_acked_writes
        assert resumed.report.lost_committed_orders == \
            baseline.report.lost_committed_orders
        assert resumed.report.rpo_seconds == baseline.report.rpo_seconds
        assert resumed.report.drained_entries == \
            baseline.report.drained_entries
        # and the resumed business is just as healthy
        assert resumed.report.succeeded
        assert resumed.report.business_report.consistent

    def test_baseline_is_a_clean_failover(self, baseline):
        assert baseline.report.succeeded
        assert baseline.report.business_report.consistent
        # an async-replication disaster may lose in-flight tail orders,
        # but the loss must be measured and fully itemised
        assert baseline.report.lost_committed_orders >= 0
        assert len(baseline.report.lost_gtids) == \
            baseline.report.lost_committed_orders


class TestInterruptedFailback:
    def test_failback_resumes_after_a_crash(self):
        sim, system, business, promoted, secondary = \
            disaster_then_serve_at_backup(seed=142)
        journal = RunbookJournal()
        crashed = FailbackManager(
            system, secondary_volume_ids=secondary,
            original_volume_ids=business.volume_ids,
            bucket_count=business.config.bucket_count,
            journal=journal, crash_after="reverse_pairs")
        process = sim.spawn(crashed.execute(
            promoted.app, list(promoted.app.catalog.values())))
        with pytest.raises(RunbookInterrupted) as exc_info:
            sim.run_until_complete(process, timeout=120.0)
        assert exc_info.value.step == "reverse_pairs"

        fresh = FailbackManager(
            system, secondary_volume_ids=secondary,
            original_volume_ids=business.volume_ids,
            bucket_count=business.config.bucket_count,
            journal=journal)
        process = sim.spawn(fresh.execute(
            promoted.app, list(promoted.app.catalog.values())))
        result = sim.run_until_complete(process, timeout=120.0)
        report = result.report
        assert report.resumed
        assert report.succeeded
        assert report.business_report.consistent
        # the reverse pairs were created exactly once: the resumed run
        # skipped the checkpointed steps instead of re-driving them
        registry = sim.telemetry.registry
        assert registry.counter("repro_runbook_steps_skipped_total",
                                runbook="failback").value >= 2
        # the returned app serves at the repaired main site
        assert not system.main.array.failed
