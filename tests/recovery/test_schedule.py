"""Tests for the scheduled snapshot rotation at the backup site."""

import pytest

from repro.apps import BackgroundLoad
from repro.errors import SnapshotError
from repro.recovery import FailoverManager, SnapshotScheduler
from repro.recovery.checker import check_storage_cut
from repro.operator import TAG_CONSISTENT, TAG_KEY, \
    install_namespace_operator
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config


@pytest.fixture()
def replicating_business():
    sim = Simulator(seed=150)
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=30_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)
    secondary = FailoverManager(
        system, business.namespace).discover_secondary_volumes()
    return sim, system, business, secondary


class TestSnapshotScheduler:
    def test_rotation_cuts_and_prunes(self, replicating_business):
        sim, system, business, secondary = replicating_business
        scheduler = SnapshotScheduler(
            system.backup.array, sorted(secondary.values()),
            interval=0.1, retain=3, name="rot")
        load = BackgroundLoad(sim, business.app, client_count=3)
        scheduler.start()
        sim.run(until=sim.now + 0.65)
        scheduler.stop()
        load.drain()
        assert len(scheduler.generations) == 3
        assert scheduler.pruned_count >= 2
        indexes = [g.index for g in scheduler.generations]
        assert indexes == sorted(indexes)
        # pruned groups are gone from the array
        with pytest.raises(SnapshotError):
            system.backup.array.get_snapshot_group("rot-gen-1")

    def test_every_generation_is_a_consistent_cut(self,
                                                  replicating_business):
        sim, system, business, secondary = replicating_business
        scheduler = SnapshotScheduler(
            system.backup.array, sorted(secondary.values()),
            interval=0.08, retain=5, name="consistent")
        load = BackgroundLoad(sim, business.app, client_count=5)
        scheduler.start()
        sim.run(until=sim.now + 0.5)
        scheduler.stop()
        load.drain()
        assert len(scheduler.generations) >= 3
        pvol_by_svol = {secondary[pvc]: business.volume_ids[pvc]
                        for pvc in secondary}
        for generation in scheduler.generations:
            frozen = generation.group.frozen_versions()
            image = {pvol_by_svol[svol_id]: versions
                     for svol_id, versions in frozen.items()}
            report = check_storage_cut(system.main.array.history, image)
            assert report.consistent, (
                f"generation {generation.index} is not a consistent cut")

    def test_point_in_time_selection(self, replicating_business):
        sim, system, business, secondary = replicating_business
        scheduler = SnapshotScheduler(
            system.backup.array, sorted(secondary.values()),
            interval=0.1, retain=10, name="pit")
        scheduler.start()
        sim.run(until=sim.now + 0.45)
        scheduler.stop()
        generations = scheduler.generations
        assert len(generations) >= 3
        target = generations[1]
        chosen = scheduler.at_or_before(target.created_at + 0.01)
        assert chosen is not None and chosen.index == target.index
        assert scheduler.at_or_before(0.0) is None
        assert scheduler.latest().index == generations[-1].index

    def test_manual_generation_between_ticks(self, replicating_business):
        sim, system, business, secondary = replicating_business
        scheduler = SnapshotScheduler(
            system.backup.array, sorted(secondary.values()),
            interval=100.0, retain=2, name="manual")
        generation = sim.run_until_complete(
            sim.spawn(scheduler.take_generation()))
        assert generation.index == 1
        assert scheduler.latest() is scheduler.generations[-1]

    def test_validation(self, replicating_business):
        sim, system, business, secondary = replicating_business
        array = system.backup.array
        volumes = sorted(secondary.values())
        with pytest.raises(SnapshotError):
            SnapshotScheduler(array, volumes, interval=0, retain=1)
        with pytest.raises(SnapshotError):
            SnapshotScheduler(array, volumes, interval=1, retain=0)
        with pytest.raises(SnapshotError):
            SnapshotScheduler(array, [], interval=1, retain=1)
        with pytest.raises(SnapshotError):
            SnapshotScheduler(array, volumes, interval=1,
                              retain=1).latest()
