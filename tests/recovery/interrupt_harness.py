"""Shared harness for the interrupted-failover equivalence invariant.

Used by the acceptance tests (``tests/recovery/test_runbook.py``) and
the CI control-plane smoke leg: build the standard protected business,
inject the disaster, and run the failover either uninterrupted or
killed at a chosen step boundary (``crash_after``) and resumed by a
fresh manager holding the same runbook journal.

The equivalence claim: a resumed failover produces byte-identical
promoted volume images and identical per-step duration accounting to
an uninterrupted run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps import issue_orders
from repro.errors import RunbookInterrupted
from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery import (FailoverManager, FailoverReport,
                            PromotedBusiness, RunbookJournal)
from repro.scenarios import (BusinessConfig, build_system,
                             deploy_business_process)
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config

#: every step of the failover runbook, in execution order (kept in sync
#: with FailoverManager.execute by test_runbook's coverage assertion)
FAILOVER_STEPS = ("discover", "stop", "drain", "promote", "measure",
                  "recover", "verify", "reopen")


@dataclass
class FailoverOutcome:
    """One completed failover plus the evidence the invariant compares."""

    report: FailoverReport
    #: pvc name -> tuple of (block, version, payload) of the promoted
    #: secondary volume — byte-identical images compare equal
    images: Dict[str, Tuple]
    promoted: PromotedBusiness


def build_disaster(seed: int = 61, orders: int = 30):
    """Protected business + committed orders + a main-site disaster."""
    sim = Simulator(seed=seed)
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)  # initial copy settles
    results = issue_orders(sim, business.app, orders)
    assert all(result.accepted for result in results)
    history = system.main.array.history
    committed = list(business.app.coordinator.committed_gtids)
    system.fail_main_site()
    return sim, system, business, history, committed


def snapshot_images(system, namespace: str) -> Dict[str, Tuple]:
    """Promoted secondary images, keyed by pvc name."""
    manager = FailoverManager(system, namespace)
    mapping = manager.discover_secondary_volumes()
    images: Dict[str, Tuple] = {}
    for pvc_name in sorted(mapping):
        volume = system.backup.array.get_volume(mapping[pvc_name])
        images[pvc_name] = tuple(
            (block, value.version, value.payload)
            for block, value in sorted(volume.block_map().items()))
    return images


def _drive(sim, system, business, history, committed,
           journal: RunbookJournal, crash_after=None) -> PromotedBusiness:
    manager = FailoverManager(system, business.namespace,
                              journal=journal, crash_after=crash_after)
    manager.configure_buckets(business.config.bucket_count)
    process = sim.spawn(manager.execute(
        catalog=list(business.app.catalog.values()),
        expected_history=history,
        expected_committed_gtids=committed,
        pvol_ids=business.volume_ids),
        name="failover")
    return sim.run_until_complete(process)


def run_uninterrupted_failover(seed: int = 61,
                               orders: int = 30) -> FailoverOutcome:
    """The baseline: one manager drives the failover end to end."""
    sim, system, business, history, committed = build_disaster(seed,
                                                               orders)
    promoted = _drive(sim, system, business, history, committed,
                      RunbookJournal())
    return FailoverOutcome(
        report=promoted.report,
        images=snapshot_images(system, business.namespace),
        promoted=promoted)


def run_interrupted_failover(seed: int = 61, crash_after: str = "promote",
                             orders: int = 30) -> FailoverOutcome:
    """Kill the manager right after ``crash_after``'s checkpoint, then
    resume with a fresh manager holding the same journal."""
    sim, system, business, history, committed = build_disaster(seed,
                                                               orders)
    journal = RunbookJournal()
    try:
        _drive(sim, system, business, history, committed, journal,
               crash_after=crash_after)
    except RunbookInterrupted as exc:
        assert exc.step == crash_after
    else:
        raise AssertionError(
            f"crash_after={crash_after!r} did not interrupt the runbook")
    promoted = _drive(sim, system, business, history, committed, journal)
    assert promoted.report.resumed
    return FailoverOutcome(
        report=promoted.report,
        images=snapshot_images(system, business.namespace),
        promoted=promoted)
