"""Unit tests for the storage-cut and business-invariant checkers."""

import pytest

from repro.apps import CatalogItem
from repro.apps.ecommerce import decode_business_state
from repro.recovery import (check_business_invariants, check_storage_cut)
from repro.storage import WriteHistory


def history_of(*writes):
    """Build a history from (volume_id, block, version) triples."""
    history = WriteHistory()
    for index, (volume_id, block, version) in enumerate(writes):
        history.append(index * 0.001, volume_id, block, version)
    return history


class TestStorageCut:
    def test_full_image_is_consistent(self):
        history = history_of((1, 0, 1), (2, 0, 1), (1, 1, 2))
        image = {1: {0: 1, 1: 2}, 2: {0: 1}}
        report = check_storage_cut(history, image)
        assert report.consistent
        assert report.applied_count == 3
        assert report.missing_count == 0
        assert report.prefix_seq == 2

    def test_prefix_image_is_consistent(self):
        """Missing a suffix of the ack order is fine (bounded RPO)."""
        history = history_of((1, 0, 1), (2, 0, 1), (1, 1, 2), (2, 1, 2))
        image = {1: {0: 1}, 2: {0: 1}}  # last two writes lost
        report = check_storage_cut(history, image)
        assert report.consistent
        assert report.missing_count == 2

    def test_gap_then_applied_is_collapsed(self):
        """Volume 2 ahead of volume 1: the §I collapse at storage level."""
        history = history_of((1, 0, 1), (2, 0, 1), (1, 0, 2), (2, 0, 2))
        image = {1: {0: 1}, 2: {0: 2}}  # vol 1 stale, vol 2 current
        report = check_storage_cut(history, image)
        assert not report.consistent
        assert len(report.witnesses) == 1
        witness = report.witnesses[0]
        assert witness.missing.volume_id == 1
        assert witness.applied.volume_id == 2
        assert "present although earlier" in str(witness)

    def test_single_volume_prefix_gap_detected(self):
        history = history_of((1, 0, 1), (1, 1, 2), (1, 0, 3))
        image = {1: {0: 3}}  # has v3 but missing the v2 write to block 1
        report = check_storage_cut(history, image)
        assert not report.consistent

    def test_unacked_inflight_writes_are_harmless(self):
        """SDC applies before ack: backup may hold never-acked writes."""
        history = history_of((1, 0, 1))
        image = {1: {0: 1, 5: 7}}  # block 5 v7 was never acked
        report = check_storage_cut(history, image)
        assert report.consistent
        assert report.unacked_count == 1

    def test_empty_history_and_image(self):
        report = check_storage_cut(WriteHistory(), {1: {}})
        assert report.consistent
        assert report.prefix_seq == -1

    def test_report_rendering(self):
        history = history_of((1, 0, 1))
        report = check_storage_cut(history, {1: {0: 1}})
        assert "CONSISTENT" in str(report)


def business(orders, movements, quantities, prices=None):
    sales_state = {f"order:{g}": v for g, v in orders.items()}
    sales_state.update({f"price:{i}": str(p)
                        for i, p in (prices or {}).items()})
    stock_state = {f"mov:{g}": v for g, v in movements.items()}
    stock_state.update({f"qty:{i}": str(q)
                        for i, q in quantities.items()})
    return decode_business_state(sales_state, stock_state)


ORDER_A = '{"amount": 10.0, "item": "widget", "qty": 1}'
MOV_A = '{"item": "widget", "qty": 1}'
CATALOG = [CatalogItem("widget", 10, 10.0)]


class TestBusinessInvariants:
    def test_consistent_state_passes(self):
        state = business({"g1": ORDER_A}, {"g1": MOV_A}, {"widget": 9})
        report = check_business_invariants(state, CATALOG)
        assert report.consistent
        assert not report.collapsed

    def test_order_without_movement(self):
        state = business({"g1": ORDER_A}, {}, {"widget": 10})
        report = check_business_invariants(state, CATALOG)
        assert not report.consistent
        assert report.violations[0].kind == "order-without-movement"
        assert not report.collapsed  # one-sided: not the mutual signature

    def test_mutual_missing_is_collapse(self):
        state = business({"g1": ORDER_A}, {"g2": MOV_A}, {"widget": 9})
        report = check_business_invariants(state, CATALOG)
        assert report.collapsed
        assert "COLLAPSED" in str(report)

    def test_stock_conservation_violation(self):
        state = business({"g1": ORDER_A}, {"g1": MOV_A}, {"widget": 5})
        report = check_business_invariants(state, CATALOG)
        assert not report.consistent
        kinds = {v.kind for v in report.violations}
        assert "stock-not-conserved" in kinds

    def test_quantity_record_missing(self):
        state = business({}, {}, {})
        report = check_business_invariants(state, CATALOG)
        assert {v.kind for v in report.violations} == {"missing-quantity"}

    def test_order_movement_mismatch(self):
        other_mov = '{"item": "widget", "qty": 3}'
        state = business({"g1": ORDER_A}, {"g1": other_mov},
                         {"widget": 7})
        report = check_business_invariants(state, CATALOG)
        kinds = {v.kind for v in report.violations}
        assert "order-movement-mismatch" in kinds
