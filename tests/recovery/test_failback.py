"""Integration tests of failback: disaster -> serve at backup ->
repair -> reverse copy -> switch back to main, with zero data loss."""

import pytest

from repro.apps import BackgroundLoad, issue_orders
from repro.errors import FailoverError
from repro.recovery import FailbackManager, FailoverManager, \
    fail_and_recover
from repro.operator import TAG_CONSISTENT, TAG_KEY, \
    install_namespace_operator
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config


def disaster_then_serve_at_backup(seed=140):
    """Protected business, disaster, promoted app serving at backup."""
    sim = Simulator(seed=seed)
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=30_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)
    issue_orders(sim, business.app, 30, rng_stream="pre-disaster")
    sim.run(until=sim.now + 1.0)  # let replication catch up fully
    manager = FailoverManager(system, business.namespace)
    secondary = manager.discover_secondary_volumes()
    promoted = fail_and_recover(system, business)
    return sim, system, business, promoted, secondary


class TestFailback:
    def test_full_cycle_returns_service_with_all_data(self):
        sim, system, business, promoted, secondary = \
            disaster_then_serve_at_backup()
        # serve at the backup site for a while
        backup_orders = issue_orders(sim, promoted.app, 25,
                                     rng_stream="at-backup")
        assert all(r.accepted for r in backup_orders)

        manager = FailbackManager(
            system, secondary_volume_ids=secondary,
            original_volume_ids=business.volume_ids,
            bucket_count=business.config.bucket_count)
        load = BackgroundLoad(sim, promoted.app, client_count=3,
                              rng_prefix="during-reverse")
        failback_proc = sim.spawn(manager.execute(
            promoted.app, list(promoted.app.catalog.values()),
            load=load))
        result = sim.run_until_complete(failback_proc, timeout=120.0)
        report = result.report
        assert report.succeeded
        assert report.business_report.consistent
        # every order ever committed anywhere survived the round trip:
        # recovered orders == pre-disaster survivors + every order the
        # backup-era app committed (sequential batch + background load)
        recovered = report.business_report.order_count
        pre_disaster_survivors = 30 - promoted.report.lost_committed_orders
        assert recovered == pre_disaster_survivors + \
            promoted.app.orders_accepted

        # the business ran during the reverse copy (background phase) ...
        assert report.orders_during_reverse_copy > 0
        # ... and the quiesce window is bounded (drain + WAL replay)
        assert report.downtime_seconds < 1.0
        assert report.quiesce_started_at >= report.reverse_paired_at

        # the returned app serves at the main site
        after = issue_orders(sim, result.app, 10, rng_stream="back-home")
        assert all(r.accepted for r in after)
        assert not system.main.array.failed

    def test_failback_validates_volume_maps(self):
        sim, system, business, promoted, secondary = \
            disaster_then_serve_at_backup(seed=141)
        with pytest.raises(FailoverError):
            FailbackManager(system, secondary_volume_ids=secondary,
                            original_volume_ids={"only-one": 100})

    def test_format_requires_unpaired_volume(self):
        from repro.errors import ArrayCommandError
        sim, system, business, promoted, secondary = \
            disaster_then_serve_at_backup(seed=142)
        system.main.array.repair()
        pvol_id = business.volume_ids["sales-wal"]
        with pytest.raises(ArrayCommandError):
            system.main.array.format_volume(pvol_id)  # still paired
