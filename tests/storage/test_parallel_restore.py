"""Dependency-aware parallel restore lanes: equivalence properties.

The contract under test: turning on restore apply lanes
(``AdcConfig.apply_lanes > 1``) may only change *when* the media waits
overlap — never the converged backup image, the RPO accounting
(``restored_count`` / ``restored_sequence``), or any quiesced snapshot
view.  Because the lane barrier commits every window at one instant,
each quiesced snapshot is a window-boundary consistency cut: its image
must equal replaying the journaled write stream up to the snapshot's
``group_sequence`` with last-writer-wins per block.  Lanes 1 must
behave exactly like the historical serial applier.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import NetworkLink, Simulator
from repro.storage import AdcConfig, ArrayConfig, StorageArray
from repro.storage.lanes import lane_delay, lane_waits, partition_lanes
from tests.storage.conftest import fast_adc

#: lane counts the equivalence properties sweep: serial, barely
#: parallel, deeply parallel
LANES = (1, 2, 8)

write_plan = st.lists(
    st.tuples(st.integers(0, 1),                  # volume index
              st.integers(0, 15),                 # block
              st.integers(0, 30)),                # payload tag
    min_size=4, max_size=60)

cut_times = st.lists(st.floats(0.004, 0.08), min_size=0, max_size=3,
                     unique=True)


def build_laned_pair(seed, lanes, volumes=2, blocks=64):
    """Two async pairs in one journal group over a bandwidth-bound link
    with small transfer/restore batches, so restore runs in several
    windows and mid-stream cuts land between them."""
    sim = Simulator(seed=seed)
    adc = fast_adc(apply_lanes=lanes, transfer_batch=8, restore_batch=8,
                   transfer_interval=0.004, restore_interval=0.001)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="M", config=config)
    backup = StorageArray(sim, serial="B", config=config)
    main_pool = main.create_pool(100_000)
    backup_pool = backup.create_pool(100_000)
    link = NetworkLink(sim, latency=0.002,
                       bandwidth_bytes_per_s=2_000_000, name="llink")
    main_jnl = main.create_journal(main_pool.pool_id, 10_000)
    backup_jnl = backup.create_journal(backup_pool.pool_id, 10_000)
    group = main.create_journal_group("jg-l", main_jnl.journal_id,
                                      backup, backup_jnl.journal_id,
                                      link)
    pvols, svols = [], []
    for index in range(volumes):
        pvol = main.create_volume(main_pool.pool_id, blocks)
        svol = backup.create_volume(backup_pool.pool_id, blocks)
        main.create_async_pair(f"pl-{index}", "jg-l", pvol.volume_id,
                               backup, svol.volume_id)
        pvols.append(pvol)
        svols.append(svol)
    return sim, main, backup, group, link, pvols, svols


def drain(sim, group, deadline=60.0):
    """Run until the pipeline fully applied everything to the S-VOLs."""
    def settled():
        return (group.entry_lag == 0 and not group.suspended
                and all(not pair.dirty_blocks
                        for pair in group.pairs.values()))

    limit = sim.now + deadline
    while not settled() and sim.now < limit:
        sim.run(until=sim.now + 0.05)
    assert settled(), "restore pipeline failed to drain"


def image_of(volume):
    return {block: (value.payload, value.version)
            for block, value in volume.block_map().items()}


def oracle_views(plan, volume_ids, cut_sequence):
    """Expected (image, frozen versions) per volume id of the write
    stream's prefix with journal sequence <= ``cut_sequence``.

    The writer issues plan writes serially through one journal group,
    so journal sequence == write index and the i-th write to a volume
    installs version i (per-volume monotone counter)."""
    images = {vid: {} for vid in volume_ids}
    versions = {vid: {} for vid in volume_ids}
    counters = {vid: 0 for vid in volume_ids}
    for sequence, (vidx, block, tag) in enumerate(plan):
        vid = volume_ids[vidx]
        counters[vid] += 1
        if sequence <= cut_sequence:
            images[vid][block] = b"w%d" % tag
            versions[vid][block] = counters[vid]
    return images, versions


def run_plan(lanes, plan, cuts=(), seed=17, fault=None):
    """Apply ``plan`` through a two-pair group at ``lanes``; returns
    the converged backup/primary images, the group, and one
    ``(group_sequence, {svol_id: (image, frozen_versions)})`` record
    per mid-stream quiesced snapshot cut."""
    sim, main, backup, group, link, pvols, svols = build_laned_pair(
        seed, lanes)
    svol_ids = [svol.volume_id for svol in svols]

    def writer():
        for vidx, block, tag in plan:
            yield from main.host_write(pvols[vidx].volume_id, block,
                                       b"w%d" % tag)

    snapshot_groups = []

    def cutter():
        last = 0.0
        for index, at in enumerate(sorted(cuts)):
            yield sim.timeout(at - last)
            last = at
            snapshot_group = yield from backup.create_snapshot_group(
                f"cut-{index}", svol_ids)
            snapshot_groups.append(snapshot_group)

    proc = sim.spawn(writer())
    cut_proc = sim.spawn(cutter())
    if fault is not None:
        fault(sim, group, link)
    sim.run_until_complete(proc)
    drain(sim, group)
    sim.run_until_complete(cut_proc)
    cut_views = []
    for snapshot_group in snapshot_groups:
        members = snapshot_group.by_base_volume()
        sequences = {snap.group_sequence for snap in members.values()}
        assert len(sequences) == 1, "cut is not a single sequence point"
        cut_views.append((sequences.pop(), {
            vid: (dict(snap.image_blocks()),
                  dict(snap.frozen_version_map()))
            for vid, snap in members.items()}))
    backup_images = {svol.volume_id: image_of(svol) for svol in svols}
    primary_images = [image_of(pvol) for pvol in pvols]
    return backup_images, primary_images, group, cut_views, svol_ids


def check_cuts(plan, svol_ids, cut_views):
    """Every quiesced cut equals the prefix-replay oracle."""
    for cut_sequence, views in cut_views:
        images, versions = oracle_views(plan, svol_ids, cut_sequence)
        for vid, (image, frozen) in views.items():
            assert image == images[vid], f"cut@{cut_sequence} image"
            assert frozen == versions[vid], f"cut@{cut_sequence} versions"


class TestLaneEquivalence:
    @given(plan=write_plan, cuts=cut_times)
    @settings(max_examples=20, deadline=None)
    def test_any_lane_count_converges_to_the_same_image(self, plan, cuts):
        """Laned == serial for any clean write stream: the backup
        images, the RPO accounting, and every mid-stream quiesced
        snapshot cut all match the serial applier."""
        baseline = None
        for lanes in LANES:
            backup_images, primary_images, group, cut_views, svol_ids = \
                run_plan(lanes, plan, cuts=cuts)
            for svol_id, pvol_image in zip(svol_ids, primary_images):
                assert backup_images[svol_id] == pvol_image
            check_cuts(plan, svol_ids, cut_views)
            accounting = (group.restored_count.value,
                          group.restored_sequence,
                          group.transferred_count.value)
            if baseline is None:
                baseline = (backup_images, accounting)
            else:
                assert backup_images == baseline[0], f"lanes={lanes}"
                assert accounting == baseline[1], f"lanes={lanes}"

    @given(plan=write_plan, cuts=cut_times,
           fail_at=st.floats(0.001, 0.05), outage=st.floats(0.01, 0.1))
    @settings(max_examples=15, deadline=None)
    def test_link_flap_mid_window_converges_identically(
            self, plan, cuts, fail_at, outage):
        """A partition that kills in-flight shipments mid-window must
        discard and re-ship without reordering: every lane count
        converges to the primary's image with identical accounting,
        and every cut taken during the storm is still a clean prefix."""
        def flap(sim, group, link):
            def chaos():
                yield sim.timeout(fail_at)
                link.fail()
                yield sim.timeout(outage)
                link.restore()
            sim.spawn(chaos())

        baseline = None
        for lanes in LANES:
            backup_images, primary_images, group, cut_views, svol_ids = \
                run_plan(lanes, plan, cuts=cuts, fault=flap)
            for svol_id, pvol_image in zip(svol_ids, primary_images):
                assert backup_images[svol_id] == pvol_image
            check_cuts(plan, svol_ids, cut_views)
            accounting = (group.restored_count.value,
                          group.restored_sequence)
            if baseline is None:
                baseline = (backup_images, accounting)
            else:
                assert backup_images == baseline[0], f"lanes={lanes}"
                assert accounting == baseline[1], f"lanes={lanes}"


class TestLaneScheduler:
    def test_round_robin_partition(self):
        lanes = partition_lanes(list(range(7)), 3)
        assert lanes == [[0, 3, 6], [1, 4], [2, 5]]

    def test_more_lanes_than_items_drops_empties(self):
        assert partition_lanes([1, 2], 8) == [[1], [2]]
        assert partition_lanes([], 4) == []

    def test_lanes_must_be_positive(self):
        with pytest.raises(ValueError, match="lanes"):
            partition_lanes([1], 0)

    def test_lane_delay_is_the_max_cost(self):
        assert lane_delay(iter([0.5, 2.0, 1.0])) == 2.0
        assert lane_delay(iter([])) == 0.0

    def test_single_delay_needs_no_processes(self):
        sim = Simulator(seed=1)
        spawned = []
        original = sim.spawn

        def tracking_spawn(*args, **kwargs):
            spawned.append(args)
            return original(*args, **kwargs)

        sim.spawn = tracking_spawn

        def waiter():
            yield from lane_waits(sim, [0.25], name="t")

        sim.run_until_complete(original(waiter()))
        assert sim.now == 0.25
        assert spawned == []  # inline timeout, byte-identical to serial

    def test_barrier_waits_for_the_slowest_lane(self):
        sim = Simulator(seed=1)

        def waiter():
            yield from lane_waits(sim, [0.1, 0.7, 0.3], name="t")

        sim.run_until_complete(sim.spawn(waiter()))
        assert sim.now == pytest.approx(0.7)


class TestLaneConfigAndMetrics:
    def test_lanes_must_be_positive(self):
        with pytest.raises(ValueError, match="apply_lanes"):
            AdcConfig(apply_lanes=0)

    def test_serial_group_registers_no_lane_metrics(self):
        """Digest neutrality: lanes=1 must not register new series."""
        sim, _main, _backup, group, _link, _pvols, _svols = \
            build_laned_pair(5, lanes=1)
        assert group.lane_conflicts is None
        assert group.restore_lanes_gauge is None

    def test_laned_group_exports_gauge_and_conflict_counter(self):
        sim, main, _backup, group, _link, pvols, _svols = \
            build_laned_pair(5, lanes=4)
        assert group.restore_lanes_gauge is not None
        assert group.restore_lanes_gauge.points[-1][1] == 4
        assert group.lane_conflicts is not None

        def writer():
            # same block twice in one window: the second write
            # supersedes the first (last-writer-wins coalescing)
            for tag in range(6):
                yield from main.host_write(pvols[0].volume_id, 3,
                                           b"c%d" % tag)

        sim.run_until_complete(sim.spawn(writer()))
        drain(sim, group)
        assert group.lane_conflicts.value >= 1
