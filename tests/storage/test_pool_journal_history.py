"""Unit tests for pools, journal volumes, write history, metrics."""

import pytest

from repro.errors import CapacityError
from repro.storage import (Counter, GaugeSeries, JournalVolume,
                           LatencyRecorder, StoragePool, WriteHistory,
                           percentile)
from repro.storage.journal import JournalFullError


class TestStoragePool:
    def test_reserve_and_release(self):
        pool = StoragePool(1, 100)
        pool.reserve("vol-a", 60)
        assert pool.free_blocks == 40
        pool.release("vol-a")
        assert pool.free_blocks == 100

    def test_overcommit_rejected(self):
        pool = StoragePool(1, 100)
        pool.reserve("vol-a", 80)
        with pytest.raises(CapacityError):
            pool.reserve("vol-b", 30)

    def test_duplicate_owner_rejected(self):
        pool = StoragePool(1, 100)
        pool.reserve("vol-a", 10)
        with pytest.raises(CapacityError):
            pool.reserve("vol-a", 10)

    def test_release_unknown_owner_rejected(self):
        with pytest.raises(CapacityError):
            StoragePool(1, 100).release("ghost")

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            StoragePool(1, 0)


class TestJournalVolume:
    def test_append_assigns_monotone_sequences(self):
        journal = JournalVolume(1, capacity_entries=10)
        e1 = journal.append(1, 0, b"a", 1, time=0.0)
        e2 = journal.append(1, 1, b"b", 2, time=0.1)
        assert (e1.sequence, e2.sequence) == (0, 1)
        assert journal.head_sequence == 1

    def test_overflow_raises_without_consuming_sequence(self):
        journal = JournalVolume(1, capacity_entries=1)
        journal.append(1, 0, b"a", 1, time=0.0)
        with pytest.raises(JournalFullError):
            journal.append(1, 1, b"b", 2, time=0.1)
        journal.pop_through(0)
        entry = journal.append(1, 1, b"b", 2, time=0.2)
        assert entry.sequence == 1

    def test_pop_through_removes_prefix(self):
        journal = JournalVolume(1, capacity_entries=10)
        for i in range(5):
            journal.append(1, i, b"x", i + 1, time=0.0)
        removed = journal.pop_through(2)
        assert [e.sequence for e in removed] == [0, 1, 2]
        assert journal.oldest_sequence() == 3

    def test_peek_batch_does_not_remove(self):
        journal = JournalVolume(1, capacity_entries=10)
        for i in range(5):
            journal.append(1, i, b"x", i + 1, time=0.0)
        batch = journal.peek_batch(3)
        assert [e.sequence for e in batch] == [0, 1, 2]
        assert len(journal) == 5

    def test_ingest_requires_sequence_order(self):
        source = JournalVolume(1, capacity_entries=10)
        entries = [source.append(1, i, b"x", i + 1, time=0.0)
                   for i in range(3)]
        target = JournalVolume(2, capacity_entries=10)
        target.ingest(entries[0])
        target.ingest(entries[1])
        with pytest.raises(ValueError):
            target.ingest(entries[0])

    def test_ingest_overflow(self):
        source = JournalVolume(1, capacity_entries=10)
        entries = [source.append(1, i, b"x", i + 1, time=0.0)
                   for i in range(2)]
        target = JournalVolume(2, capacity_entries=1)
        target.ingest(entries[0])
        with pytest.raises(JournalFullError):
            target.ingest(entries[1])

    def test_peak_entries_tracks_high_water(self):
        journal = JournalVolume(1, capacity_entries=10)
        for i in range(4):
            journal.append(1, i, b"x", i + 1, time=0.0)
        journal.pop_through(3)
        assert journal.peak_entries == 4
        assert len(journal) == 0

    def test_entry_size_includes_header(self):
        journal = JournalVolume(1, capacity_entries=10)
        entry = journal.append(1, 0, b"12345678", 1, time=0.0)
        assert entry.size_bytes == 8 + 64


class TestWriteHistory:
    def test_append_assigns_ack_order(self):
        history = WriteHistory()
        r1 = history.append(0.1, volume_id=1, block=0, version=1)
        r2 = history.append(0.2, volume_id=2, block=0, version=1)
        assert (r1.seq, r2.seq) == (0, 1)
        assert len(history) == 2

    def test_restriction_preserves_order(self):
        history = WriteHistory()
        for i in range(6):
            history.append(i * 0.1, volume_id=i % 3, block=0, version=i)
        restricted = history.restricted([0, 2])
        assert [r.volume_id for r in restricted] == [0, 2, 0, 2]
        assert [r.seq for r in restricted] == sorted(
            r.seq for r in restricted)

    def test_lookup_by_volume_version(self):
        history = WriteHistory()
        record = history.append(0.1, volume_id=7, block=3, version=42)
        assert history.lookup(7, 42) is record
        assert history.lookup(7, 43) is None

    def test_for_volume(self):
        history = WriteHistory()
        history.append(0.1, volume_id=1, block=0, version=1)
        history.append(0.2, volume_id=2, block=0, version=1)
        history.append(0.3, volume_id=1, block=1, version=2)
        assert [r.version for r in history.for_volume(1)] == [1, 2]

    def test_last_seq_empty(self):
        assert WriteHistory().last_seq() == -1


class TestMetrics:
    def test_percentile_interpolates(self):
        assert percentile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)
        assert percentile([5], 0.99) == 5

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_percentile_fraction_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_latency_recorder_summary(self):
        recorder = LatencyRecorder("w")
        for value in [0.001, 0.002, 0.003, 0.010]:
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.004)
        assert summary.maximum == 0.010
        millis = summary.as_millis()
        assert millis.mean == pytest.approx(4.0)

    def test_latency_recorder_empty_summary_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("w").summary()

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder("w").record(-0.1)

    def test_counter(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)
        counter.reset()
        assert counter.value == 0

    def test_gauge_series(self):
        gauge = GaugeSeries("g")
        gauge.sample(0.0, 1.0)
        gauge.sample(1.0, 3.0)
        assert gauge.maximum() == 3.0
        assert gauge.mean() == 2.0
        with pytest.raises(ValueError):
            GaugeSeries("empty").maximum()
