"""Unit and integration tests for copy-on-write snapshots and groups."""

import pytest

from repro.errors import SnapshotError
from repro.storage.snapshot import SNAPSHOT_VIEW_ID_BASE
from tests.storage.conftest import run
from tests.storage.test_adc import make_async_pair


class TestSnapshotCow:
    def test_snapshot_freezes_image(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"old"))
        snap = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"new"))
        assert snap.read_current(0) == b"old"
        assert vol.peek(0).payload == b"new"

    def test_unallocated_block_stays_absent_in_snapshot(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        snap = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 3, b"later"))
        assert snap.read_current(3) is None

    def test_untouched_blocks_fall_through_to_base(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 1, b"shared"))
        snap = array.create_snapshot(vol.volume_id)
        assert snap.read_current(1) == b"shared"
        assert snap.cow_blocks == 0  # no write happened, no COW copy

    def test_cow_copy_happens_once_per_block(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"v1"))
        snap = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"v2"))
        run(sim, array.host_write(vol.volume_id, 0, b"v3"))
        assert snap.cow_blocks == 1
        assert snap.read_current(0) == b"v1"

    def test_writable_overlay_does_not_touch_base(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"base"))
        snap = array.create_snapshot(vol.volume_id)
        view = snap.view()
        run(sim, view.write_block(0, b"overlay"))
        assert run(sim, view.read_block(0)) == b"overlay"
        assert vol.peek(0).payload == b"base"

    def test_view_volume_id_is_disjoint(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        snap = array.create_snapshot(vol.volume_id)
        assert snap.view().volume_id >= SNAPSHOT_VIEW_ID_BASE

    def test_deleted_snapshot_rejects_access(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        snap = array.create_snapshot(vol.volume_id)
        array.delete_snapshot(snap.snapshot_id)
        with pytest.raises(SnapshotError):
            snap.read_current(0)
        assert vol.snapshot_count == 0

    def test_multiple_snapshots_independent(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"epoch1"))
        snap1 = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"epoch2"))
        snap2 = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"epoch3"))
        assert snap1.read_current(0) == b"epoch1"
        assert snap2.read_current(0) == b"epoch2"

    def test_image_blocks_merges_layers(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"a"))
        run(sim, array.host_write(vol.volume_id, 1, b"b"))
        snap = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"a2"))
        snap.write_overlay(2, b"c")
        image = snap.image_blocks()
        assert image == {0: b"a", 1: b"b", 2: b"c"}


class TestSnapshotGroup:
    def test_group_snapshots_all_members(self, sim, two_site):
        array = two_site.main
        vols = [array.create_volume(two_site.main_pool_id, 64)
                for _ in range(3)]
        for i, vol in enumerate(vols):
            run(sim, array.host_write(vol.volume_id, 0, b"v%d" % i))
        group = run(sim, array.create_snapshot_group(
            "sg", [v.volume_id for v in vols]))
        assert len(group.snapshots) == 3
        by_base = group.by_base_volume()
        for i, vol in enumerate(vols):
            assert by_base[vol.volume_id].read_current(0) == b"v%d" % i

    def test_quiesced_group_is_consistent_under_restore(self, sim, two_site):
        """Snapshot group during live restore: the images must be a prefix
        of the replicated order across both volumes."""
        pvol_a, svol_a = make_async_pair(two_site, group_id="jg-a",
                                         pair_id="pa")
        pvol_b = two_site.main.create_volume(two_site.main_pool_id, 256)
        svol_b = two_site.backup.create_volume(two_site.backup_pool_id, 256)
        two_site.main.create_async_pair(
            "pb", "jg-a", pvol_b.volume_id, two_site.backup,
            svol_b.volume_id)

        def writer(sim):
            for i in range(60):
                target = pvol_a if i % 2 == 0 else pvol_b
                yield from two_site.main.host_write(
                    target.volume_id, i % 8, b"w%03d" % i, tag=f"t{i}")

        proc = sim.spawn(writer(sim))
        sim.run(until=sim.now + 0.004)
        group = run(sim, two_site.backup.create_snapshot_group(
            "sg", [svol_a.volume_id, svol_b.volume_id], quiesce=True))
        # check prefix property of the frozen images
        frozen = group.frozen_versions()
        applied = set()
        mapping = {svol_a.volume_id: pvol_a.volume_id,
                   svol_b.volume_id: pvol_b.volume_id}
        for svol_id, versions in frozen.items():
            pvol_id = mapping[svol_id]
            for record in two_site.main.history.for_volume(pvol_id):
                if versions.get(record.block, -1) >= record.version:
                    applied.add(record.seq)
        history = two_site.main.history.restricted(list(mapping.values()))
        seen_missing = False
        for record in history:
            if record.seq in applied:
                assert not seen_missing, "snapshot group is not a prefix"
            else:
                seen_missing = True
        sim.run_until_complete(proc)
        sim.run(until=sim.now + 1.0)
        # restore resumed and completed after the quiesce window
        assert svol_a.block_map() == pvol_a.block_map()

    def test_duplicate_group_id_rejected(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.create_snapshot_group("sg", [vol.volume_id]))
        with pytest.raises(SnapshotError):
            run(sim, array.create_snapshot_group("sg", [vol.volume_id]))

    def test_empty_group_rejected(self, sim, two_site):
        with pytest.raises(SnapshotError):
            run(sim, two_site.main.create_snapshot_group("sg", []))

    def test_snapshot_pruned_during_cow_wait_is_skipped(self, sim,
                                                        two_site):
        """Regression: deleting a snapshot while a write is waiting out
        the COW copy latency must not blow up the write (the retention
        scheduler prunes snapshots under live load)."""
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"base"))
        snap = array.create_snapshot(vol.volume_id)
        writer = sim.spawn(array.host_write(vol.volume_id, 0, b"new"))
        # delete the snapshot mid-write (inside the COW latency window)
        sim.call_after(vol.media.cow_copy_latency / 2,
                       lambda: array.delete_snapshot(snap.snapshot_id))
        record = sim.run_until_complete(writer)
        assert record is not None
        assert vol.peek(0).payload == b"new"

    def test_group_delete_releases_members(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        group = run(sim, array.create_snapshot_group("sg", [vol.volume_id]))
        group.delete()
        assert vol.snapshot_count == 0
