"""Tests for snapshot cloning (point-in-time restore to full volumes)."""

import pytest

from repro.storage import VolumeRole
from tests.storage.conftest import run


@pytest.fixture()
def array(two_site):
    return two_site.main


class TestCloneSnapshot:
    def test_clone_holds_the_frozen_image(self, sim, two_site, array):
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"v1"))
        run(sim, array.host_write(vol.volume_id, 1, b"keep"))
        snap = array.create_snapshot(vol.volume_id)
        run(sim, array.host_write(vol.volume_id, 0, b"v2"))
        clone = array.clone_snapshot(snap.snapshot_id,
                                     two_site.main_pool_id)
        assert clone.peek(0).payload == b"v1"
        assert clone.peek(1).payload == b"keep"
        assert vol.peek(0).payload == b"v2"

    def test_clone_preserves_versions_for_the_checker(self, sim,
                                                      two_site, array):
        vol = array.create_volume(two_site.main_pool_id, 64)
        record = run(sim, array.host_write(vol.volume_id, 3, b"x"))
        snap = array.create_snapshot(vol.volume_id)
        clone = array.clone_snapshot(snap.snapshot_id,
                                     two_site.main_pool_id)
        assert clone.peek(3).version == record.version

    def test_clone_is_independent_and_writable(self, sim, two_site,
                                               array):
        vol = array.create_volume(two_site.main_pool_id, 64)
        run(sim, array.host_write(vol.volume_id, 0, b"base"))
        snap = array.create_snapshot(vol.volume_id)
        clone = array.clone_snapshot(snap.snapshot_id,
                                     two_site.main_pool_id)
        assert clone.role is VolumeRole.SIMPLEX
        run(sim, array.host_write(clone.volume_id, 0, b"diverged"))
        assert clone.peek(0).payload == b"diverged"
        assert vol.peek(0).payload == b"base"
        assert snap.read_current(0) == b"base"

    def test_clone_includes_snapshot_overlay_writes(self, sim, two_site,
                                                    array):
        vol = array.create_volume(two_site.main_pool_id, 64)
        snap = array.create_snapshot(vol.volume_id)
        snap.write_overlay(5, b"overlay")
        clone = array.clone_snapshot(snap.snapshot_id,
                                     two_site.main_pool_id)
        assert clone.peek(5).payload == b"overlay"

    def test_clone_reserves_pool_capacity(self, sim, two_site, array):
        pool = array._pools[two_site.main_pool_id]
        vol = array.create_volume(two_site.main_pool_id, 500)
        snap = array.create_snapshot(vol.volume_id)
        free_before = pool.free_blocks
        array.clone_snapshot(snap.snapshot_id, two_site.main_pool_id)
        assert pool.free_blocks == free_before - 500


class TestCloneGroup:
    def test_group_clone_returns_every_member(self, sim, two_site,
                                              array):
        vols = [array.create_volume(two_site.main_pool_id, 64)
                for _ in range(3)]
        for index, vol in enumerate(vols):
            run(sim, array.host_write(vol.volume_id, 0, b"v%d" % index))
        run(sim, array.create_snapshot_group(
            "cg", [v.volume_id for v in vols]))
        clones = array.clone_snapshot_group("cg", two_site.main_pool_id)
        assert sorted(clones) == sorted(v.volume_id for v in vols)
        for index, vol in enumerate(vols):
            assert clones[vol.volume_id].peek(0).payload == b"v%d" % index

    def test_point_in_time_database_restore_from_generation(self):
        """End to end: clone a retained snapshot generation and recover
        the databases at that instant."""
        from repro.apps import issue_orders
        from repro.apps.analytics import (DatabaseImage,
                                          recover_business_images)
        from repro.apps.ecommerce import decode_business_state
        from repro.apps.minidb.device import ViewBlockDevice
        from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                                    install_namespace_operator)
        from repro.recovery import FailoverManager, SnapshotScheduler
        from repro.recovery.checker import check_business_invariants
        from repro.scenarios import (BusinessConfig, build_system,
                                     deploy_business_process)
        from repro.simulation import Simulator
        from tests.csi.conftest import fast_system_config

        sim = Simulator(seed=180)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        business = deploy_business_process(
            system, BusinessConfig(wal_blocks=20_000))
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        secondary = FailoverManager(
            system, business.namespace).discover_secondary_volumes()
        scheduler = SnapshotScheduler(
            system.backup.array, sorted(secondary.values()),
            interval=10.0, retain=5, name="pit")
        issue_orders(sim, business.app, 10, rng_stream="first")
        sim.run(until=sim.now + 1.0)
        generation = sim.run_until_complete(
            sim.spawn(scheduler.take_generation()))
        issue_orders(sim, business.app, 10, rng_stream="second")
        sim.run(until=sim.now + 1.0)

        clones = system.backup.array.clone_snapshot_group(
            generation.group_id, system.backup.pool_id)

        def device(pvc):
            return ViewBlockDevice(clones[secondary[pvc]])

        buckets = business.config.bucket_count
        sales_rec, stock_rec = sim.run_until_complete(sim.spawn(
            recover_business_images(
                sim,
                DatabaseImage(device("sales-wal"), device("sales-data"),
                              buckets),
                DatabaseImage(device("stock-wal"), device("stock-data"),
                              buckets))))
        state = decode_business_state(sales_rec.state, stock_rec.state)
        report = check_business_invariants(
            state, list(business.app.catalog.values()))
        assert report.consistent
        # the restore is AT the generation's instant: only the first
        # batch of orders exists there
        assert report.order_count == 10
