"""Tests of the wire data-reduction engine (compression + dedup).

Units of :class:`ReductionCodec` / :class:`FingerprintCache` plus end to
end coverage of the three wire paths: duplicate-heavy ADC streams ship
at least 3x fewer bytes with a bit-identical secondary image, corrupted
payloads and corrupted dedup references quarantine exactly like the
unreduced path, and cache state is invalidated on link-down, quarantine
and array restart.
"""

import pytest

from repro.apps.workload import PayloadProfile
from repro.simulation import Simulator
from repro.storage import PairState, SdcConfig
from repro.storage.reduction import (COMPRESS_FRAME_BYTES, KIND_COMPRESSED,
                                     KIND_RAW, KIND_REFERENCE,
                                     FingerprintCache, ReductionCodec,
                                     ReductionConfig)
from tests.chaos.test_faults import corrupt_first_entry
from tests.storage.conftest import build_two_site, fast_adc, run
from tests.storage.test_adc import make_async_pair

REDUCED = ReductionConfig(enabled=True)


def duplicate_payloads(count, seed=29, size=1024, unique=8):
    """A duplicate-heavy write stream: ``unique`` distinct payloads."""
    profile = PayloadProfile(kind="duplicate", size_bytes=size, seed=seed,
                             unique_payloads=unique)
    return [profile.payload(i) for i in range(count)]


def drain_duplicates(seed=11, writes=60, blocks=64, **adc_overrides):
    """Write a duplicate stream through one ADC pair and drain it."""
    site = build_two_site(Simulator(seed=seed),
                          adc=fast_adc(**adc_overrides))
    sim = site.sim
    pvol, svol = make_async_pair(site, blocks=blocks)

    def writer(sim):
        for i, payload in enumerate(duplicate_payloads(writes)):
            yield from site.main.host_write(
                pvol.volume_id, i % blocks, payload)

    run(sim, writer(sim))
    sim.run(until=sim.now + 2.0)
    group = site.main.journal_groups["jg-0"]
    assert group.entry_lag == 0
    return site, pvol, svol, group


class TestReductionConfig:
    def test_disabled_by_default(self):
        assert not ReductionConfig().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ReductionConfig(level=0)
        with pytest.raises(ValueError):
            ReductionConfig(level=10)
        with pytest.raises(ValueError):
            ReductionConfig(ratio_threshold=0.0)
        with pytest.raises(ValueError):
            ReductionConfig(ratio_threshold=1.5)
        with pytest.raises(ValueError):
            ReductionConfig(min_compress_bytes=-1)
        with pytest.raises(ValueError):
            ReductionConfig(cache_entries=-1)
        with pytest.raises(ValueError):
            ReductionConfig(ref_bytes=0)


class TestReductionCodec:
    def test_small_payload_skips_compression(self):
        codec = ReductionCodec(ReductionConfig(min_compress_bytes=32))
        assert codec.compress(b"tiny") is None

    def test_incompressible_payload_ships_raw(self):
        profile = PayloadProfile(kind="random", size_bytes=512, seed=3)
        codec = ReductionCodec(ReductionConfig())
        assert codec.compress(profile.payload(0)) is None

    def test_compressible_payload_round_trips(self):
        profile = PayloadProfile(kind="compressible", size_bytes=512,
                                 seed=3)
        codec = ReductionCodec(ReductionConfig())
        payload = profile.payload(0)
        packed = codec.compress(payload)
        assert packed is not None
        assert len(packed) + COMPRESS_FRAME_BYTES < len(payload)
        assert ReductionCodec.decompress(packed) == payload

    def test_deterministic(self):
        codec = ReductionCodec(ReductionConfig())
        payload = b"abc" * 200
        assert codec.compress(payload) == codec.compress(payload)


class TestFingerprintCache:
    def test_fifo_eviction_ignores_recency(self):
        cache = FingerprintCache(2)
        cache.put((1, 1), b"a")
        cache.put((2, 1), b"b")
        assert cache.get((1, 1)) == b"a"  # a read must not promote
        cache.put((3, 1), b"c")
        assert (1, 1) not in cache  # oldest *insertion* evicted
        assert cache.get((2, 1)) == b"b"
        assert cache.evictions == 1

    def test_reinsert_keeps_original_slot(self):
        cache = FingerprintCache(2)
        cache.put((1, 1), b"a")
        cache.put((2, 1), b"b")
        cache.put((1, 1), b"a")  # no-op: first insertion wins
        cache.put((3, 1), b"c")
        assert (1, 1) not in cache

    def test_zero_capacity_holds_nothing(self):
        cache = FingerprintCache(0)
        cache.put((1, 1), b"a")
        assert len(cache) == 0
        assert cache.get((1, 1)) is None

    def test_clear_drops_everything(self):
        cache = FingerprintCache(4)
        cache.put((1, 1), b"a")
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FingerprintCache(-1)


class TestAdcReduction:
    def test_duplicate_stream_ships_3x_fewer_bytes_same_image(self):
        plain_site, plain_pvol, plain_svol, _ = drain_duplicates()
        site, pvol, svol, group = drain_duplicates(reduction=REDUCED)
        # bit-identical secondary image, off vs on
        assert svol.block_map() == pvol.block_map()
        assert {b: v.payload for b, v in svol.block_map().items()} == \
            {b: v.payload for b, v in plain_svol.block_map().items()}
        # at least 3x fewer bytes on the wire
        assert site.link.bytes_transferred * 3 <= \
            plain_site.link.bytes_transferred
        # logical accounting keeps its pre-reduction meaning
        plain_group = plain_site.main.journal_groups["jg-0"]
        assert group.transfer_bytes.value == \
            plain_group.transfer_bytes.value
        assert group.reducer.hits > 0

    def test_windowed_transfer_same_image_and_savings(self):
        plain_site, _, plain_svol, _ = drain_duplicates()
        site, pvol, svol, group = drain_duplicates(
            reduction=REDUCED, transfer_window=4)
        assert svol.block_map() == pvol.block_map()
        assert {b: v.payload for b, v in svol.block_map().items()} == \
            {b: v.payload for b, v in plain_svol.block_map().items()}
        assert site.link.bytes_transferred * 3 <= \
            plain_site.link.bytes_transferred

    def test_wire_counter_matches_link_accounting(self):
        site, _, _, group = drain_duplicates(reduction=REDUCED)
        counter = group.reducer.wire_counter("transfer")
        assert counter.value == site.link.bytes_transferred

    def test_dedup_and_compress_savings_are_split(self):
        _, _, _, group = drain_duplicates(reduction=REDUCED)
        # repeats ship as references; each pool payload's first trip may
        # also win from compression (the sha256 keystream does not, so
        # dedup must dominate)
        assert group.reducer.saved_dedup.value > 0
        saved = group.reducer.saved_dedup.value + \
            group.reducer.saved_compress.value
        assert saved == group.transfer_bytes.value - \
            group.reducer.wire_counter("transfer").value

    def test_disabled_reducer_registers_nothing(self, sim, two_site):
        make_async_pair(two_site)
        group = two_site.main.journal_groups["jg-0"]
        assert not group.reducer.enabled
        group.reducer.invalidate()  # no-op, no AttributeError
        group.reducer.discard()


class TestReductionIntegrity:
    """Satellite: ``corrupt_entry`` x reference-shipped entries."""

    def warm_pair(self, seed=11):
        """A reduced ADC pair whose caches hold one duplicate payload."""
        site = build_two_site(Simulator(seed=seed),
                              adc=fast_adc(reduction=REDUCED))
        sim = site.sim
        pvol, svol = make_async_pair(site)
        group = site.main.journal_groups["jg-0"]
        payload = duplicate_payloads(1)[0]
        run(sim, site.main.host_write(pvol.volume_id, 0, payload))
        sim.run(until=sim.now + 1.0)
        assert svol.peek(0).payload == payload
        assert len(group.reducer.sender) > 0
        return site, pvol, svol, group, payload

    def test_corrupted_payload_ships_raw_and_quarantines(self):
        """A torn main-journal entry no longer matches its own cache
        entry, so it ships in full and fails CRC at receive — the same
        quarantine + auto-repair as the unreduced path."""
        site, pvol, svol, group, payload = self.warm_pair()
        sim = site.sim
        group.stop_transfer()
        run(sim, site.main.host_write(pvol.volume_id, 1, payload))
        assert len(group.main_journal) == 1
        corrupted = group.main_journal.corrupt_entry(0)
        assert corrupted is not None
        hits_before = group.reducer.hits
        group.restart()
        sim.run(until=sim.now + 2.0)
        assert group.corruptions_wire.value == 1
        assert group.repair_resyncs.value >= 1
        assert group.pairs["pair-0"].state is PairState.PAIR
        assert svol.peek(1).payload == payload
        applied = {value.payload for value in svol.block_map().values()}
        assert corrupted.payload not in applied
        # the poisoned payload must not have ridden the dedup cache
        assert group.reducer.hits == hits_before

    def test_corrupted_reference_quarantines_like_payload(self):
        """Wire corruption of a reference-shipped entry is detected,
        quarantined and repaired exactly like a corrupted payload."""
        site, pvol, svol, group, payload = self.warm_pair()
        sim = site.sim
        state = {"corrupted": None}
        corrupt_first_entry(group, state)
        hits_before = group.reducer.hits
        invalidations_before = group.reducer.invalidations.value
        run(sim, site.main.host_write(pvol.volume_id, 1, payload))
        sim.run(until=sim.now + 2.0)
        # the entry really did ship as a reference...
        assert group.reducer.hits == hits_before + 1
        # ...and its corruption walked the standard quarantine path
        assert group.corruptions_wire.value == 1
        assert len(group.quarantine) == 1
        assert group.repair_resyncs.value >= 1
        assert group.pairs["pair-0"].state is PairState.PAIR
        assert svol.peek(1).payload == payload
        applied = {value.payload for value in svol.block_map().values()}
        assert state["corrupted"] not in applied
        # quarantine invalidated the caches (receiver state unprovable)
        assert group.reducer.invalidations.value > invalidations_before

    def test_torn_backup_entry_detected_with_reduction_on(self):
        site, pvol, svol, group, payload = self.warm_pair()
        sim = site.sim
        group.quiesce_restore()
        run(sim, site.main.host_write(pvol.volume_id, 3, payload))
        sim.run(until=sim.now + 0.5)
        assert len(group.backup_journal) == 1
        corrupted = group.backup_journal.corrupt_entry(0)
        assert corrupted is not None
        group.resume_restore()
        sim.run(until=sim.now + 2.0)
        assert group.corruptions_journal.value == 1
        assert group.pairs["pair-0"].state is PairState.PAIR
        assert svol.peek(3).payload == payload


class TestCacheInvalidation:
    def test_link_down_invalidates_and_recovers(self):
        site, pvol, svol, group = drain_duplicates(reduction=REDUCED)
        sim = site.sim
        assert len(group.reducer.sender) > 0
        site.link.fail()
        run(sim, site.main.host_write(
            pvol.volume_id, 0, duplicate_payloads(1)[0]))
        sim.run(until=sim.now + 0.5)
        assert group.reducer.invalidations.value >= 1
        site.link.restore()
        if group.suspended:
            run(sim, group.resync())
        sim.run(until=sim.now + 2.0)
        assert group.entry_lag == 0
        assert svol.block_map() == pvol.block_map()

    def test_restart_invalidates(self):
        _, _, _, group = drain_duplicates(reduction=REDUCED)
        assert len(group.reducer.sender) > 0
        before = group.reducer.invalidations.value
        group.restart()
        assert group.reducer.invalidations.value == before + 1
        assert len(group.reducer.sender) == 0
        assert len(group.reducer.receiver) == 0


class TestSdcReduction:
    def seeded_volumes(self, site, blocks=32):
        pvol = site.main.create_volume(site.main_pool_id, blocks)
        svol = site.backup.create_volume(site.backup_pool_id, blocks)
        for block, payload in enumerate(duplicate_payloads(blocks)):
            run(site.sim, site.main.host_write(
                pvol.volume_id, block, payload))
        return pvol, svol

    def make_pair(self, site, pvol, svol, reduction):
        mirror = site.main.create_sync_mirror(
            "sm-red", site.link,
            sdc_config=SdcConfig(reduction=reduction))
        site.main.create_sync_pair("sp-red", "sm-red", pvol.volume_id,
                                   site.backup, svol.volume_id)
        return mirror

    def test_initial_copy_reduced_with_identical_image(self):
        plain = build_two_site(Simulator(seed=11))
        p_pvol, p_svol = self.seeded_volumes(plain)
        self.make_pair(plain, p_pvol, p_svol, ReductionConfig())
        plain.sim.run(until=plain.sim.now + 2.0)
        assert p_svol.block_map() == p_pvol.block_map()

        site = build_two_site(Simulator(seed=11))
        pvol, svol = self.seeded_volumes(site)
        mirror = self.make_pair(site, pvol, svol, REDUCED)
        site.sim.run(until=site.sim.now + 2.0)
        assert svol.block_map() == pvol.block_map()
        assert site.link.bytes_transferred * 3 <= \
            plain.link.bytes_transferred
        assert mirror.reducer.wire_counter("copy").value > 0

    def test_resync_reduced_path_accounts_separately(self):
        site = build_two_site(Simulator(seed=11))
        pvol, svol = self.seeded_volumes(site)
        mirror = self.make_pair(site, pvol, svol, REDUCED)
        site.sim.run(until=site.sim.now + 2.0)
        site.link.fail()
        payload = duplicate_payloads(1)[0]
        run(site.sim, site.main.host_write(pvol.volume_id, 0, payload))
        # link-down invalidated the mirror's caches
        assert mirror.reducer.invalidations.value >= 1
        site.link.restore()
        run(site.sim, mirror.resync())
        pair = site.main.find_pair("sp-red")
        assert pair.state is PairState.PAIR
        assert svol.block_map() == pvol.block_map()
        assert mirror.reducer.wire_counter("resync").value > 0


class TestNetworkQueueGauges:
    def test_queue_depth_gauges_registered_and_sampled(self):
        from repro.simulation import NetworkLink
        sim = Simulator(seed=3)
        link = NetworkLink(sim, latency=0.001,
                           bandwidth_bytes_per_s=1e6, name="gauged")
        names = sim.telemetry.registry.names()
        assert "repro_link_queue_depth" in names
        assert "repro_link_peak_queue_depth" in names
        for _ in range(4):
            sim.spawn(link.transfer(64_000))
        sim.run(until=sim.now + 5.0)
        peak = sim.telemetry.registry.gauge(
            "repro_link_peak_queue_depth", link="gauged")
        assert peak.points
        assert peak.value >= 1
