"""Unit coverage for the hot-path machinery.

The sequence-indexed ring inside :class:`JournalVolume` (contiguity
fast path, gap fallback, compaction, byte accounting), the batched
replication apply helpers on :class:`Volume`, the tracer fast path,
and the bounded idle lag-sampling cadence of the transfer loop.
"""

import pytest

from repro.errors import VolumeError
from repro.simulation import Simulator
from repro.storage.journal import JournalEntry, JournalVolume
from repro.storage.volume import MediaProfile, Volume
from repro.telemetry.spans import NULL_SPAN, Tracer
from tests.storage.conftest import build_two_site, fast_adc, run


def filled_journal(count: int, capacity: int = 100_000) -> JournalVolume:
    journal = JournalVolume(1, capacity, name="ring")
    for index in range(count):
        journal.append(7, index % 16, b"p%04d" % index, index + 1, 0.0)
    return journal


def entry(sequence: int, payload: bytes = b"x") -> JournalEntry:
    return JournalEntry(sequence=sequence, volume_id=7,
                        block=sequence % 16, payload=payload,
                        version=sequence + 1, created_at=0.0)


class TestRingSemantics:
    def test_pop_through_contiguous(self):
        journal = filled_journal(10)
        removed = journal.pop_through(4)
        assert [e.sequence for e in removed] == [0, 1, 2, 3, 4]
        assert len(journal) == 5
        assert journal.oldest_sequence() == 5

    def test_pop_through_full_drain_resets_storage(self):
        journal = filled_journal(10)
        removed = journal.pop_through(9)
        assert len(removed) == 10
        assert len(journal) == 0
        assert journal.bytes_retained == 0
        assert journal.oldest_entry() is None
        # sequence numbering continues after the reset
        appended = journal.append(7, 0, b"next", 99, 1.0)
        assert appended.sequence == 10

    def test_pop_through_with_sequence_gaps(self):
        """The contiguity fast-guess must fall back to binary search
        when ingested sequences have holes (quarantine, coalescing)."""
        journal = JournalVolume(2, 1000, name="gappy")
        for sequence in (0, 1, 5, 6, 9, 12):
            journal.ingest(entry(sequence))
        removed = journal.pop_through(7)
        assert [e.sequence for e in removed] == [0, 1, 5, 6]
        assert journal.oldest_sequence() == 9
        # cutting inside a hole removes everything below it
        assert [e.sequence for e in journal.pop_through(11)] == [9]
        assert [e.sequence for e in journal.pop_through(12)] == [12]
        assert len(journal) == 0

    def test_pop_through_before_oldest_is_noop(self):
        journal = JournalVolume(3, 1000, name="late")
        for sequence in (5, 6, 7):
            journal.ingest(entry(sequence))
        assert journal.pop_through(4) == []
        assert len(journal) == 3

    def test_bytes_retained_tracks_append_and_trim(self):
        journal = JournalVolume(4, 1000, name="bytes")
        journal.append(7, 0, b"ab", 1, 0.0)       # 2 + 64
        journal.append(7, 1, b"abcd", 2, 0.0)     # 4 + 64
        assert journal.bytes_retained == 134
        journal.pop_through(0)
        assert journal.bytes_retained == 68
        journal.clear()
        assert journal.bytes_retained == 0

    def test_corrupt_entry_updates_accounting(self):
        journal = filled_journal(3)
        before = journal.bytes_retained
        assert journal.mutations == 0
        corrupted = journal.corrupt_entry(0)
        assert corrupted is not None
        assert not corrupted.verify_checksum()
        assert journal.mutations == 1
        # default torn-write mutation truncates one byte
        assert journal.bytes_retained == before - 1
        assert journal.corrupt_entry(99) is None
        assert journal.mutations == 1

    def test_peek_batch_rejects_bad_limit(self):
        journal = filled_journal(3)
        with pytest.raises(ValueError):
            journal.peek_batch(0)

    def test_compaction_preserves_contents(self):
        """Partial trims beyond the compaction threshold relocate the
        ring; retained entries and byte totals must be unaffected."""
        journal = filled_journal(12_000)
        journal.pop_through(8_191)  # dead prefix > threshold, > half
        assert len(journal) == 12_000 - 8_192
        assert journal.oldest_sequence() == 8_192
        expected = sum(e.size_bytes for e in journal.snapshot_entries())
        assert journal.bytes_retained == expected
        remaining = journal.pop_through(11_999)
        assert [e.sequence for e in remaining[:2]] == [8_192, 8_193]
        assert len(journal) == 0 and journal.bytes_retained == 0

    def test_snapshot_is_a_copy(self):
        journal = filled_journal(5)
        snapshot = journal.snapshot_entries()
        journal.pop_through(4)
        assert [e.sequence for e in snapshot] == [0, 1, 2, 3, 4]


class TestBatchedApplyHelpers:
    def make_volume(self, sim):
        return Volume(sim, 1, 64, MediaProfile())

    def test_install_block_is_instant_and_versioned(self):
        sim = Simulator(seed=1)
        volume = self.make_volume(sim)
        volume.install_block(3, b"one", 5)
        assert sim.now == 0.0
        assert volume.peek(3).payload == b"one"
        assert volume.peek(3).version == 5
        with pytest.raises(VolumeError):
            volume.install_block(3, b"stale", 5)

    def test_install_block_reuses_checksum(self):
        sim = Simulator(seed=1)
        volume = self.make_volume(sim)
        volume.install_block(0, b"data", 1, checksum=12345)
        assert volume.peek(0).checksum == 12345

    def test_apply_delay_counts_pending_cow(self):
        from repro.storage.snapshot import Snapshot
        sim = Simulator(seed=1)
        volume = self.make_volume(sim)
        run(sim, volume.write_block(0, b"base"))
        base_cost = volume.apply_delay(0)
        assert base_cost == volume.media.write_latency
        snapshot = Snapshot(1, volume, created_at=sim.now)
        assert (volume.apply_delay(0)
                == base_cost + volume.media.cow_copy_latency)
        # install preserves the pre-image, after which the cost drops
        volume.install_block(0, b"new", volume.version_counter + 1)
        assert snapshot.has_preimage(0)
        assert volume.apply_delay(0) == base_cost


class TestTracerFastPath:
    def test_disabled_tracer_allocates_nothing(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.enabled = False
        span = tracer.start("host-write", volume=7)
        assert span is NULL_SPAN
        assert span.trace_id is None and span.span_id is None
        assert span.set(block=3) is span
        assert span.attrs == {}
        tracer.finish(span)  # no-op, no double-finish error
        tracer.finish(span)
        assert len(tracer) == 0

    def test_reenabling_restores_real_spans(self):
        tracer = Tracer(clock=lambda: 1.0)
        tracer.enabled = False
        assert tracer.start("a") is NULL_SPAN
        tracer.enabled = True
        span = tracer.start("b")
        assert span is not NULL_SPAN
        tracer.finish(span)
        assert span.finished and len(tracer) == 1


class TestIdleLagCadence:
    def test_idle_sampling_is_bounded(self):
        """An idle transfer loop must not sample the lag gauges on
        every wake-up — only once per idle_lag_sample_interval."""
        sim = Simulator(seed=11)
        site = build_two_site(
            sim, adc=fast_adc(transfer_interval=0.001,
                              idle_lag_sample_interval=0.05))
        pvol = site.main.create_volume(site.main_pool_id, 64)
        svol = site.backup.create_volume(site.backup_pool_id, 64)
        main_jnl = site.main.create_journal(site.main_pool_id, 1000)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 1000)
        group = site.main.create_journal_group(
            "jg-idle", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        site.main.create_async_pair("pair-idle", "jg-idle",
                                    pvol.volume_id, site.backup,
                                    svol.volume_id)
        run(sim, site.main.host_write(pvol.volume_id, 0, b"seed"))
        sim.run(until=sim.now + 0.2)  # drain, then go idle
        settled = len(group.lag_entries.points)
        idle_time = 1.0
        sim.run(until=sim.now + idle_time)
        idle_samples = len(group.lag_entries.points) - settled
        # ~1000 idle wake-ups at 1 ms, but at most ~20 samples at 50 ms
        assert idle_samples <= idle_time / 0.05 + 2
        assert idle_samples >= 2
