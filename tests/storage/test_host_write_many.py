"""Batched host writes (``StorageArray.host_write_many``).

The contract under test: a batch behaves exactly like the same writes
issued serially through ``host_write`` — identical ack order, versions,
journal contents, suspension semantics and final images — while paying
one aggregated media wait instead of the serial sum.
"""

import pytest

from repro.errors import VolumeError
from repro.simulation import Simulator
from repro.storage import StorageArray
from tests.storage.conftest import build_two_site, fast_adc, run


def build_pair(sim, journal_capacity=10_000, blocks=64, adc=None):
    """One ADC pair; returns (site, group, pvol, svol)."""
    site = build_two_site(sim, adc=adc or fast_adc())
    pvol = site.main.create_volume(site.main_pool_id, blocks)
    svol = site.backup.create_volume(site.backup_pool_id, blocks)
    main_jnl = site.main.create_journal(site.main_pool_id,
                                        journal_capacity)
    backup_jnl = site.backup.create_journal(site.backup_pool_id,
                                            journal_capacity)
    group = site.main.create_journal_group(
        "jg-batch", main_jnl.journal_id, site.backup,
        backup_jnl.journal_id, site.link)
    site.main.create_async_pair("pair-batch", "jg-batch", pvol.volume_id,
                                site.backup, svol.volume_id)
    return site, group, pvol, svol


def ack_projection(history):
    """WriteRecords minus timestamps (batching changes ack instants,
    never the order/content)."""
    return [(r.seq, r.volume_id, r.block, r.version, r.tag)
            for r in history.records]


class TestBatchedEqualsSerial:
    WRITES = [(index % 8, b"payload-%04d" % index) for index in range(40)]

    def drive(self, batched):
        sim = Simulator(seed=21)
        site, group, pvol, svol = build_pair(sim)
        writes = [(pvol.volume_id, block, payload)
                  for block, payload in self.WRITES]

        def writer():
            if batched:
                yield from site.main.host_write_many(writes)
            else:
                for volume_id, block, payload in writes:
                    yield from site.main.host_write(volume_id, block,
                                                    payload)

        group.stop()  # freeze transfer so the snapshot sees every entry
        run(sim, writer())
        entries = [(e.sequence, e.volume_id, e.block, e.payload,
                    e.version, e.checksum)
                   for e in group.main_journal.snapshot_entries()]
        group.start()
        deadline = sim.now + 60.0
        while group.entry_lag and sim.now < deadline:
            sim.run(until=sim.now + 0.05)
        assert group.entry_lag == 0
        image = {block: (value.payload, value.version, value.checksum)
                 for block, value in svol.block_map().items()}
        return site.main, ack_projection(site.main.history), entries, image

    def test_acks_journal_and_image_identical(self):
        """The tentpole contract: WriteRecord sequence, journal entries
        and the drained backup image are bit-identical to serial."""
        _, serial_acks, serial_entries, serial_image = self.drive(False)
        _, batch_acks, batch_entries, batch_image = self.drive(True)
        assert batch_acks == serial_acks
        assert batch_entries == serial_entries
        assert batch_image == serial_image

    def test_batch_metrics_count_per_write(self):
        """Each batched write still counts once in every instrument."""
        main, acks, _entries, _image = self.drive(True)
        count = len(self.WRITES)
        assert len(acks) == count
        assert main.host_writes.value == count
        assert len(main.write_latency) == count
        assert main.write_latency_hist.count == count


class TestBatchSemantics:
    def test_empty_batch_is_a_noop(self, sim):
        site, _group, _pvol, _svol = build_pair(sim)
        records = run(sim, site.main.host_write_many([]))
        assert records == []
        assert len(site.main.history) == 0

    def test_single_aggregated_wait(self, sim):
        """A batch of N distinct-block writes takes one media write
        latency plus one journal-append latency — not N of each."""
        site, _group, pvol, _svol = build_pair(sim)
        media = site.main.config.media
        adc = site.main.config.adc
        writes = [(pvol.volume_id, block, b"x%02d" % block)
                  for block in range(16)]
        start = sim.now

        def writer():
            return (yield from site.main.host_write_many(writes))

        records = run(sim, writer())
        elapsed = sim.now - start
        expected = media.write_latency + adc.journal_append_latency
        assert elapsed == pytest.approx(expected)
        # every write of the batch acked at the same instant with the
        # batch latency
        assert {r.time for r in records} == {start + expected}

    def test_versions_and_seqs_in_input_order(self, sim):
        site, _group, pvol, _svol = build_pair(sim)
        writes = [(pvol.volume_id, 3, b"first"), (pvol.volume_id, 3,
                                                  b"second"),
                  (pvol.volume_id, 5, b"third")]
        records = run(sim, site.main.host_write_many(writes))
        assert [r.seq for r in records] == [0, 1, 2]
        assert [r.version for r in records] == [1, 2, 3]
        assert pvol.peek(3).payload == b"second"
        assert pvol.peek(5).payload == b"third"

    def test_per_write_tag_overrides_batch_tag(self, sim):
        site, _group, pvol, _svol = build_pair(sim)
        records = run(sim, site.main.host_write_many(
            [(pvol.volume_id, 0, b"a"),
             (pvol.volume_id, 1, b"b", "special")], tag="bulk"))
        assert [r.tag for r in records] == ["bulk", "special"]

    def test_invalid_write_rejects_whole_batch(self, sim):
        """Validation runs before any state changes: one bad write means
        nothing is installed, journaled or acked."""
        site, group, pvol, _svol = build_pair(sim)

        def bad_volume():
            yield from site.main.host_write_many(
                [(pvol.volume_id, 0, b"ok"), (9999, 1, b"bad")])

        with pytest.raises(VolumeError):
            run(sim, bad_volume())

        def bad_payload():
            yield from site.main.host_write_many(
                [(pvol.volume_id, 0, b"ok"), (pvol.volume_id, 1, "str")])

        with pytest.raises(VolumeError):
            run(sim, bad_payload())

        def bad_block():
            yield from site.main.host_write_many(
                [(pvol.volume_id, 0, b"ok"), (pvol.volume_id, 10_000,
                                              b"oob")])

        with pytest.raises(VolumeError):
            run(sim, bad_block())
        assert len(site.main.history) == 0
        assert pvol.peek(0) is None
        assert len(group.main_journal) == 0

    def test_checksum_rides_into_journal_and_block(self, sim):
        """The CRC32 is computed once and threaded end-to-end."""
        from repro.storage.journal import payload_checksum
        site, group, pvol, _svol = build_pair(sim)
        run(sim, site.main.host_write_many([(pvol.volume_id, 7,
                                             b"checked")]))
        expected = payload_checksum(b"checked")
        assert pvol.peek(7).checksum == expected
        [entry] = group.main_journal.snapshot_entries()
        assert entry.checksum == expected
        assert entry.verify_checksum()

    def test_one_span_per_batch(self, sim):
        """Tracing on: the batch opens one host-write-batch span and one
        journal-append span, not one per write."""
        site, _group, pvol, _svol = build_pair(sim)
        tracer = sim.telemetry.tracer
        writes = [(pvol.volume_id, block, b"traced") for block in range(8)]
        run(sim, site.main.host_write_many(writes))
        batch_spans = tracer.named("host-write-batch")
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["writes"] == 8
        appends = tracer.named("journal-append")
        assert len(appends) == 1
        # the journal leg is parented to the batch span, so restore
        # applies at the backup keep a causal parent
        assert appends[0].trace_id == batch_spans[0].trace_id


class TestSuspensionMidBatch:
    def drive(self, batched):
        """8 writes through a 5-entry journal; returns the converged
        outcome (suspension must hit write 6 either way)."""
        sim = Simulator(seed=31)
        site, group, pvol, _svol = build_pair(sim, journal_capacity=5)
        group.stop()  # nothing drains: the 6th append overflows
        writes = [(pvol.volume_id, block, b"w%d" % block)
                  for block in range(8)]

        def writer():
            if batched:
                yield from site.main.host_write_many(writes)
            else:
                for volume_id, block, payload in writes:
                    yield from site.main.host_write(volume_id, block,
                                                    payload)

        run(sim, writer())
        pair = group.pairs["pair-batch"]
        return (group.suspended, len(group.main_journal),
                ack_projection(site.main.history),
                sorted(pair.dirty_blocks))

    def test_journal_full_matches_serial(self):
        """Suspension semantics are per write: the overflowing write and
        everything after it go dirty, earlier writes stay journaled, and
        every write still acks."""
        serial = self.drive(False)
        batch = self.drive(True)
        assert batch == serial
        suspended, journaled, acks, dirty = batch
        assert suspended
        assert journaled == 5
        assert len(acks) == 8
        assert len(dirty) == 3


class TestSyncMirrorBatch:
    def test_batch_replicates_through_sync_mirror(self, sim):
        """Sync-mirrored volumes take their per-write RTT but still
        produce the serial outcome."""
        site = build_two_site(sim)
        pvol = site.main.create_volume(site.main_pool_id, 32)
        svol = site.backup.create_volume(site.backup_pool_id, 32)
        site.main.create_sync_mirror("sm", site.link)
        site.main.create_sync_pair("pair-sync", "sm", pvol.volume_id,
                                   site.backup, svol.volume_id)
        writes = [(pvol.volume_id, block, b"sync-%d" % block)
                  for block in range(4)]
        records = run(sim, site.main.host_write_many(writes))
        assert [r.version for r in records] == [1, 2, 3, 4]
        for block in range(4):
            assert svol.peek(block).payload == b"sync-%d" % block


class TestLatencyRecordingDeduplicated:
    def test_one_record_feeds_summary_and_sketch(self, sim):
        """The summary shim pipes into the histogram: the host paths
        record each sample once, both surfaces stay populated, and the
        legacy read API remains intact."""
        array = StorageArray(sim, serial="G370-LAT")
        pool = array.create_pool(1000)
        volume = array.create_volume(pool.pool_id, 16)

        def driver():
            for index in range(5):
                yield from array.host_write(volume.volume_id, index,
                                            b"lat")
            for index in range(3):
                yield from array.host_read(volume.volume_id, index)

        run(sim, driver())
        assert len(array.write_latency) == 5
        assert array.write_latency_hist.count == 5
        assert len(array.read_latency) == 3
        assert array.read_latency_hist.count == 3
        summary = array.write_latency.summary()  # legacy API
        assert summary.count == 5
        assert summary.maximum == pytest.approx(
            array.write_latency_hist.maximum)
