"""Integration tests of the asynchronous data copy pipeline (ADC).

These tests exercise the paper's §III-A1 mechanics end to end: journaled
writes, background transfer/restore, consistency-group ordering, initial
copy, journal overflow suspension, split/resync, failover drain.
"""

import pytest

from repro.errors import VolumeError
from repro.simulation import Simulator
from repro.storage import PairState
from tests.storage.conftest import build_two_site, fast_adc, run


def make_async_pair(site, blocks=256, group_id="jg-0", pair_id="pair-0"):
    """Create one ADC pair in its own journal group; returns (pvol, svol)."""
    pvol = site.main.create_volume(site.main_pool_id, blocks)
    svol = site.backup.create_volume(site.backup_pool_id, blocks)
    main_jnl = site.main.create_journal(site.main_pool_id, 10_000)
    backup_jnl = site.backup.create_journal(site.backup_pool_id, 10_000)
    site.main.create_journal_group(
        group_id, main_jnl.journal_id, site.backup,
        backup_jnl.journal_id, site.link)
    site.main.create_async_pair(pair_id, group_id, pvol.volume_id,
                                site.backup, svol.volume_id)
    return pvol, svol


class TestBasicReplication:
    def test_write_converges_to_svol(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"hello"))
        sim.run(until=sim.now + 1.0)
        assert svol.peek(0).payload == b"hello"
        assert svol.peek(0).version == pvol.peek(0).version

    def test_ack_does_not_wait_for_network(self, sim, two_site):
        """The ADC promise: host latency excludes the inter-site link."""
        pvol, _svol = make_async_pair(two_site)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"x"))
        summary = two_site.main.write_latency.summary()
        # local write + journal append only; the 5 ms link never appears
        assert summary.maximum < two_site.link.latency

    def test_svol_rejects_host_writes(self, sim, two_site):
        _pvol, svol = make_async_pair(two_site)
        with pytest.raises(VolumeError):
            run(sim, two_site.backup.host_write(svol.volume_id, 0, b"x"))

    def test_restore_applies_in_sequence_order(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)

        def writer(sim):
            for i in range(50):
                yield from two_site.main.host_write(
                    pvol.volume_id, i % 8, b"w%d" % i)

        run(sim, writer(sim))
        sim.run(until=sim.now + 1.0)
        assert svol.block_map() == pvol.block_map()

    def test_initial_copy_of_preexisting_data(self, sim, two_site):
        pvol = two_site.main.create_volume(two_site.main_pool_id, 64)
        for block in range(10):
            run(sim, two_site.main.host_write(pvol.volume_id, block,
                                              b"pre%d" % block))
        svol = two_site.backup.create_volume(two_site.backup_pool_id, 64)
        main_jnl = two_site.main.create_journal(two_site.main_pool_id, 1000)
        backup_jnl = two_site.backup.create_journal(
            two_site.backup_pool_id, 1000)
        two_site.main.create_journal_group(
            "jg-ic", main_jnl.journal_id, two_site.backup,
            backup_jnl.journal_id, two_site.link)
        pair = two_site.main.create_async_pair(
            "pair-ic", "jg-ic", pvol.volume_id, two_site.backup,
            svol.volume_id)
        assert pair.state is PairState.COPY
        sim.run(until=sim.now + 1.0)
        assert pair.state is PairState.PAIR
        assert svol.block_map() == pvol.block_map()

    def test_empty_volume_pair_is_immediately_paired(self, sim, two_site):
        _pvol, _svol = make_async_pair(two_site)
        pair = two_site.main.find_pair("pair-0")
        assert pair.state is PairState.PAIR


class TestConsistencyGroupOrdering:
    def test_shared_journal_preserves_cross_volume_order(self, sim):
        """Writes to two volumes in one group restore in ack order: at any
        backup instant the applied set is a prefix of the main history."""
        site = build_two_site(Simulator(seed=5), adc=fast_adc())
        sim = site.sim
        pvol_a = site.main.create_volume(site.main_pool_id, 64)
        pvol_b = site.main.create_volume(site.main_pool_id, 64)
        svol_a = site.backup.create_volume(site.backup_pool_id, 64)
        svol_b = site.backup.create_volume(site.backup_pool_id, 64)
        main_jnl = site.main.create_journal(site.main_pool_id, 10_000)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 10_000)
        site.main.create_journal_group(
            "cg", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        site.main.create_async_pair("p-a", "cg", pvol_a.volume_id,
                                    site.backup, svol_a.volume_id)
        site.main.create_async_pair("p-b", "cg", pvol_b.volume_id,
                                    site.backup, svol_b.volume_id)

        def writer(sim):
            # alternate volumes so the ack order interleaves them
            for i in range(40):
                target = pvol_a if i % 2 == 0 else pvol_b
                yield from site.main.host_write(
                    target.volume_id, i % 4, b"w%d" % i)

        proc = sim.spawn(writer(sim))

        def snapshot_applied():
            applied = set()
            for pvol, svol in ((pvol_a, svol_a), (pvol_b, svol_b)):
                for block, value in svol.block_map().items():
                    for record in site.main.history.for_volume(
                            pvol.volume_id):
                        if record.block == block and \
                                record.version <= value.version:
                            applied.add(record.seq)
            return applied

        # sample the backup state repeatedly while replication is racing
        group_ids = [pvol_a.volume_id, pvol_b.volume_id]
        for _ in range(30):
            sim.run(until=sim.now + 0.002)
            applied = snapshot_applied()
            group_history = site.main.history.restricted(group_ids)
            seen_missing = False
            for record in group_history:
                if record.seq in applied:
                    assert not seen_missing, (
                        "backup cut is not a prefix of the ack order")
                else:
                    seen_missing = True
        sim.run_until_complete(proc)
        sim.run(until=sim.now + 1.0)
        assert svol_a.block_map() == pvol_a.block_map()
        assert svol_b.block_map() == pvol_b.block_map()


class TestConcurrentRestore:
    def test_parallel_restore_converges_identically(self, sim):
        """restore_concurrency > 1 must deliver exactly the same final
        secondary state, just faster."""
        site = build_two_site(Simulator(seed=7), adc=fast_adc(
            restore_concurrency=8))
        sim = site.sim
        pvol, svol = (None, None)
        pvol = site.main.create_volume(site.main_pool_id, 256)
        svol = site.backup.create_volume(site.backup_pool_id, 256)
        mj = site.main.create_journal(site.main_pool_id, 10_000)
        bj = site.backup.create_journal(site.backup_pool_id, 10_000)
        site.main.create_journal_group("jg-par", mj.journal_id,
                                       site.backup, bj.journal_id,
                                       site.link)
        site.main.create_async_pair("p-par", "jg-par", pvol.volume_id,
                                    site.backup, svol.volume_id)

        def writer(sim):
            for i in range(120):
                # repeated writes to a small block set force conflict
                # windows (same-block entries must never reorder)
                yield from site.main.host_write(pvol.volume_id, i % 8,
                                                b"w%03d" % i)

        run(sim, writer(sim))
        sim.run(until=sim.now + 1.0)
        assert svol.block_map() == pvol.block_map()

    def test_restore_window_stops_at_block_conflict(self, sim, two_site):
        from repro.storage import AdcConfig, JournalGroup, JournalVolume
        mj = JournalVolume(1, 100)
        bj = JournalVolume(2, 100)
        from repro.simulation import NetworkLink
        group = JournalGroup(sim, "w", mj, bj,
                             NetworkLink(sim, latency=0.001),
                             config=AdcConfig(restore_concurrency=8,
                                              interval_jitter=0.0))
        # ingest entries: blocks 0,1,0 -> window must stop before the
        # second write to block 0
        for seq, block in enumerate((0, 1, 0)):
            bj.ingest(mj.append(1, block, b"x", seq + 1, time=0.0))
        window = group._pick_restore_window(100)
        assert [e.block for e in window] == [0, 1]

    def test_restore_concurrency_validation(self):
        from repro.storage import AdcConfig
        with pytest.raises(ValueError):
            AdcConfig(restore_concurrency=0)


class TestSuspension:
    def test_journal_overflow_suspends_pair(self, sim):
        site = build_two_site(Simulator(seed=6), adc=fast_adc(
            transfer_interval=10.0))  # transfer never runs in test window
        sim = site.sim
        pvol = site.main.create_volume(site.main_pool_id, 64)
        svol = site.backup.create_volume(site.backup_pool_id, 64)
        main_jnl = site.main.create_journal(site.main_pool_id, 5)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 100)
        site.main.create_journal_group(
            "jg", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        pair = site.main.create_async_pair(
            "pair", "jg", pvol.volume_id, site.backup, svol.volume_id)

        def writer(sim):
            for i in range(10):
                yield from site.main.host_write(pvol.volume_id, i % 64,
                                                b"w%d" % i)

        run(sim, writer(sim))
        assert pair.state is PairState.PSUE
        assert "journal full" in pair.suspend_reason
        # writes continued to be acked (fence never) and were dirty-tracked
        assert len(pair.dirty_blocks) > 0

    def test_split_and_resync(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        group = two_site.main.journal_groups["jg-0"]
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"before"))
        sim.run(until=sim.now + 0.5)
        group.split()
        pair = two_site.main.find_pair("pair-0")
        assert pair.state is PairState.PSUS
        run(sim, two_site.main.host_write(pvol.volume_id, 1, b"during"))
        sim.run(until=sim.now + 0.5)
        assert svol.peek(1) is None  # split: update not propagated
        run(sim, group.resync())
        sim.run(until=sim.now + 0.5)
        assert pair.state is PairState.PAIR
        assert svol.peek(1).payload == b"during"

    def test_link_down_retries_until_restore(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        two_site.link.fail()
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"x"))
        sim.run(until=sim.now + 0.2)
        assert svol.peek(0) is None
        two_site.link.restore()
        sim.run(until=sim.now + 0.5)
        assert svol.peek(0).payload == b"x"


class TestFailover:
    def test_drain_applies_backup_journal_only(self, sim, two_site):
        """After a main-site disaster, data already at the backup journal
        is restored; data still in the main journal is lost (bounded RPO)."""
        pvol, svol = make_async_pair(two_site)
        group = two_site.main.journal_groups["jg-0"]

        def writer(sim):
            for i in range(20):
                yield from two_site.main.host_write(
                    pvol.volume_id, i, b"w%d" % i)

        run(sim, writer(sim))
        sim.run(until=sim.now + 0.0005)  # freeze mid-replication
        two_site.main.fail()
        two_site.link.fail()
        group.stop()
        lost_in_main = len(group.main_journal)
        run(sim, group.drain())
        applied_blocks = len(svol.block_map())
        assert applied_blocks + lost_in_main >= 20
        # everything ingested at the backup got applied
        assert len(group.backup_journal) == 0

    def test_promote_secondary_makes_svol_writable(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        sim.run(until=sim.now + 0.5)
        two_site.backup.promote_secondary(svol.volume_id)
        pair = two_site.main.find_pair("pair-0")
        assert pair.state is PairState.SSWS
        record = run(sim, two_site.backup.host_write(
            svol.volume_id, 0, b"promoted"))
        assert record.volume_id == svol.volume_id

    def test_failed_array_rejects_io(self, sim, two_site):
        pvol, _svol = make_async_pair(two_site)
        two_site.main.fail()
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            run(sim, two_site.main.host_write(pvol.volume_id, 0, b"x"))


class TestQuiesce:
    def test_quiesce_pauses_restore_at_entry_boundary(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        group = two_site.main.journal_groups["jg-0"]

        def writer(sim):
            for i in range(30):
                yield from two_site.main.host_write(
                    pvol.volume_id, i % 16, b"w%d" % i)

        proc = sim.spawn(writer(sim))
        sim.run(until=sim.now + 0.003)
        group.quiesce_restore()
        frozen_at = group.restored_sequence
        sim.run(until=sim.now + 0.05)
        # one in-flight apply may complete after the gate closes
        assert group.restored_sequence <= frozen_at + 1
        group.resume_restore()
        sim.run_until_complete(proc)
        sim.run(until=sim.now + 1.0)
        assert svol.block_map() == pvol.block_map()
