"""Pipelined inter-site transfer: window equivalence, adaptive batch.

The contract under test: opening the transfer window
(``AdcConfig.transfer_window > 1``) and turning on adaptive batch
sizing may only change *when* entries cross the wire — never the
converged backup image, the ingest order (backup journals reject
out-of-order sequences, so any violation raises mid-run), or the
quarantine/repair semantics.  Window 1 must behave exactly like the
historical stop-and-wait loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import NetworkLink, Simulator
from repro.storage import AdcConfig, ArrayConfig, StorageArray
from repro.storage.adc import JournalGroup
from repro.storage.journal import JournalEntry
from tests.storage.conftest import fast_adc

#: windows the equivalence properties sweep: stop-and-wait, barely
#: pipelined, deeply pipelined
WINDOWS = (1, 2, 8)

write_plan = st.lists(
    st.tuples(st.integers(0, 15),                 # block
              st.integers(0, 30)),                # payload tag
    min_size=4, max_size=60)


def build_windowed_pair(seed, window, blocks=64, batch=8,
                        bandwidth=2_000_000, **overrides):
    """One ADC pair over a bandwidth-bound link with a small transfer
    batch, so several batches queue up and the window actually opens."""
    sim = Simulator(seed=seed)
    adc = fast_adc(transfer_window=window, transfer_batch=batch,
                   transfer_interval=0.004, restore_interval=0.001,
                   **overrides)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="M", config=config)
    backup = StorageArray(sim, serial="B", config=config)
    main_pool = main.create_pool(100_000)
    backup_pool = backup.create_pool(100_000)
    link = NetworkLink(sim, latency=0.002,
                       bandwidth_bytes_per_s=bandwidth, name="plink")
    pvol = main.create_volume(main_pool.pool_id, blocks)
    svol = backup.create_volume(backup_pool.pool_id, blocks)
    main_jnl = main.create_journal(main_pool.pool_id, 10_000)
    backup_jnl = backup.create_journal(backup_pool.pool_id, 10_000)
    group = main.create_journal_group("jg-w", main_jnl.journal_id,
                                      backup, backup_jnl.journal_id,
                                      link)
    main.create_async_pair("pw-0", "jg-w", pvol.volume_id, backup,
                           svol.volume_id)
    return sim, main, group, link, pvol, svol


def drain(sim, group, deadline=60.0):
    """Run until the pipeline fully applied everything to the S-VOLs.

    Convergence needs more than ``entry_lag == 0``: a quarantine trims
    the corrupted entry off the journal (lag 0) while its block is
    still dirty and awaiting the next auto-repair round, so settle
    until the suspension cleared and every dirty set is empty too.
    """
    def settled():
        return (group.entry_lag == 0 and not group.suspended
                and all(not pair.dirty_blocks
                        for pair in group.pairs.values()))

    limit = sim.now + deadline
    while not settled() and sim.now < limit:
        sim.run(until=sim.now + 0.05)
    assert settled(), "pipeline failed to drain"


def image_of(volume):
    return {block: (value.payload, value.version)
            for block, value in volume.block_map().items()}


def run_plan(window, plan, seed=17, fault=None, **overrides):
    """Apply ``plan`` through one pair at ``window``; returns the
    converged (backup image, primary image, group)."""
    sim, main, group, link, pvol, svol = build_windowed_pair(
        seed, window, **overrides)

    def writer():
        for block, tag in plan:
            yield from main.host_write(pvol.volume_id, block,
                                       b"w%d" % tag)

    proc = sim.spawn(writer())
    if fault is not None:
        fault(sim, group, link)
    sim.run_until_complete(proc)
    drain(sim, group)
    return image_of(svol), image_of(pvol), group


class TestWindowEquivalence:
    @given(plan=write_plan)
    @settings(max_examples=20, deadline=None)
    def test_any_window_converges_to_the_same_image(self, plan):
        """Pipelined == stop-and-wait for any clean write stream: the
        backup image, its versions, and the entry count all match."""
        baseline = None
        for window in WINDOWS:
            backup_image, primary_image, group = run_plan(window, plan)
            assert backup_image == primary_image
            shipped = group.transferred_count.value
            if baseline is None:
                baseline = (backup_image, shipped)
            else:
                assert backup_image == baseline[0], f"window={window}"
                assert shipped == baseline[1], f"window={window}"

    @given(plan=write_plan, fail_at=st.floats(0.001, 0.05),
           outage=st.floats(0.01, 0.1))
    @settings(max_examples=15, deadline=None)
    def test_link_flap_mid_window_converges_identically(
            self, plan, fail_at, outage):
        """A partition that kills several in-flight shipments must
        discard and re-ship without reordering: every window converges
        to the primary's image."""
        def flap(sim, group, link):
            def chaos():
                yield sim.timeout(fail_at)
                link.fail()
                yield sim.timeout(outage)
                link.restore()
            sim.spawn(chaos())

        baseline = None
        for window in WINDOWS:
            backup_image, primary_image, _group = run_plan(
                window, plan, fault=flap)
            assert backup_image == primary_image
            if baseline is None:
                baseline = backup_image
            else:
                assert backup_image == baseline, f"window={window}"

    @given(plan=write_plan)
    @settings(max_examples=15, deadline=None)
    def test_wire_corruption_mid_window_heals_identically(self, plan):
        """Deterministic wire corruption (by sequence, so every window
        corrupts the same entries): quarantine + auto-repair must
        converge every window to the primary's image, and no corrupted
        payload may ever reach a secondary volume."""
        def corrupt(sim, group, link):
            def injector(entry):
                if entry.sequence % 5 == 3:
                    payload = entry.payload or b"\x00"
                    return JournalEntry(
                        entry.sequence, entry.volume_id, entry.block,
                        payload[:-1] + bytes([payload[-1] ^ 0x40]),
                        entry.version, entry.created_at,
                        checksum=entry.checksum)
                return entry
            group.install_wire_injector(injector)

        baseline = None
        for window in WINDOWS:
            backup_image, primary_image, group = run_plan(
                window, plan, fault=corrupt)
            assert backup_image == primary_image
            if len(plan) >= 4:  # sequences 1.. carry at least one hit
                assert group.corruptions_wire.value >= 1
            if baseline is None:
                baseline = backup_image
            else:
                assert backup_image == baseline, f"window={window}"


class TestCoalesceHelper:
    def entry(self, sequence, block, payload=b"x", volume=7):
        return JournalEntry(sequence, volume, block, payload,
                            sequence, 0.0)

    def test_last_writer_wins_per_address(self):
        batch = [self.entry(1, 0, b"old"), self.entry(2, 1),
                 self.entry(3, 0, b"new")]
        ship, survivor = JournalGroup._coalesce_batch(batch)
        assert [e.sequence for e in ship] == [2, 3]
        assert survivor == {(7, 1): 2, (7, 0): 3}

    def test_distinct_addresses_all_survive(self):
        batch = [self.entry(i, i) for i in range(1, 5)]
        ship, survivor = JournalGroup._coalesce_batch(batch)
        assert ship == batch
        assert survivor == {(7, i): i for i in range(1, 5)}

    def test_batch_tail_always_survives(self):
        batch = [self.entry(i, 3) for i in range(1, 6)]
        ship, _survivor = JournalGroup._coalesce_batch(batch)
        assert [e.sequence for e in ship] == [5]


class TestAdaptiveBatch:
    def adaptive_pair(self, window, entries=1500):
        """Pair with adaptive sizing and a pre-filled backlog."""
        sim, main, group, link, pvol, svol = build_windowed_pair(
            31, window, blocks=512, batch=64, bandwidth=50_000_000,
            adaptive_batch=True, transfer_batch_min=64,
            transfer_batch_max=512, transfer_batch_step=64,
            batch_target_time=0.05)
        group.stop()

        def writer():
            for first in range(0, entries, 128):
                count = min(128, entries - first)
                yield from main.host_write_many(
                    [(pvol.volume_id, (first + i) % 512, b"a")
                     for i in range(count)])

        sim.run_until_complete(sim.spawn(writer()))
        group.restart()
        return sim, group, link

    @pytest.mark.parametrize("window", [1, 4])
    def test_backlog_grows_the_batch(self, window):
        sim, group, _link = self.adaptive_pair(window)
        assert group._batch_size == 64
        drain(sim, group)
        assert group._batch_size > 64
        assert group.batch_size_gauge.points[-1][1] == group._batch_size

    def test_link_failure_halves_down_to_the_floor(self):
        sim, group, link = self.adaptive_pair(4)

        def flap():
            yield sim.timeout(0.005)
            link.fail()
            yield sim.timeout(2.0)
            link.restore()

        sim.spawn(flap())
        drain(sim, group)
        floor_hit = min(value for _t, value
                        in group.batch_size_gauge.points)
        assert floor_hit == 64  # repeated failures halve to the min

    @pytest.mark.parametrize("window", [1, 4])
    def test_size_stays_within_bounds(self, window):
        sim, group, _link = self.adaptive_pair(window)
        drain(sim, group)
        sizes = [value for _t, value in group.batch_size_gauge.points]
        assert sizes, "adaptive sizing never sampled the gauge"
        assert all(64 <= size <= 512 for size in sizes)

    def test_static_sizing_never_samples_the_gauge(self):
        _sim, _main, group, _link, _pvol, _svol = build_windowed_pair(
            33, window=2)
        assert group.batch_size_gauge.points == []


class TestConfigValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="transfer_window"):
            AdcConfig(transfer_window=0)

    def test_batch_bounds_must_be_ordered(self):
        with pytest.raises(ValueError, match="transfer_batch_max"):
            AdcConfig(transfer_batch_min=256, transfer_batch_max=64)

    def test_batch_min_and_step_must_be_positive(self):
        with pytest.raises(ValueError, match="transfer_batch_min"):
            AdcConfig(transfer_batch_min=0)
        with pytest.raises(ValueError, match="transfer_batch_step"):
            AdcConfig(transfer_batch_step=0)

    def test_target_time_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_target_time"):
            AdcConfig(batch_target_time=0.0)

    def test_adaptive_clamps_the_initial_batch(self):
        sim, _main, group, _link, _pvol, _svol = build_windowed_pair(
            35, window=1, batch=8, adaptive_batch=True,
            transfer_batch_min=16, transfer_batch_max=32)
        assert group._batch_size == 16
