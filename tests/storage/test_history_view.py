"""Cached ``WriteHistory.records`` view.

The checker walks ``history.records`` after every converged scenario;
pre-cache, each read rebuilt an O(n) tuple.  The view must now be built
once per generation of appends and shared by every reader until the
next append invalidates it.
"""

from repro.storage.history import WriteHistory


def fill(history, count, volume_id=7):
    for index in range(count):
        history.append(float(index), volume_id, index % 4, index + 1)


class TestCachedRecordsView:
    def test_repeated_reads_share_one_tuple(self):
        history = WriteHistory()
        fill(history, 50)
        first = history.records
        assert history.records is first
        assert history.records is first
        # exactly one construction for any number of reads
        assert history.view_builds == 1

    def test_append_invalidates_the_view(self):
        history = WriteHistory()
        fill(history, 10)
        stale = history.records
        history.append(99.0, 7, 0, 11)
        fresh = history.records
        assert fresh is not stale
        assert len(fresh) == len(stale) + 1
        assert history.view_builds == 2
        # the stale view is an immutable snapshot, still intact
        assert len(stale) == 10

    def test_build_count_is_per_generation_not_per_read(self):
        """The regression guard: N interleaved append/read rounds cost
        exactly N tuple constructions, never N * reads."""
        history = WriteHistory()
        rounds = 20
        for round_index in range(rounds):
            history.append(float(round_index), 7, 0, round_index + 1)
            for _ in range(10):  # checker-style repeated reads
                assert history.records[-1].version == round_index + 1
        assert history.view_builds == rounds

    def test_view_is_a_real_tuple(self):
        history = WriteHistory()
        fill(history, 8)
        view = history.records
        assert isinstance(view, tuple)
        assert [record.seq for record in view[2:5]] == [2, 3, 4]
        assert view[-1].version == 8

    def test_empty_history_view(self):
        history = WriteHistory()
        assert history.records == ()
        assert history.records is history.records
