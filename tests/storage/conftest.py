"""Shared fixtures for storage-array tests."""

from dataclasses import dataclass

import pytest

from repro.simulation import NetworkLink, Simulator
from repro.storage import AdcConfig, ArrayConfig, StorageArray


@pytest.fixture()
def sim():
    return Simulator(seed=11)


def fast_adc(**overrides) -> AdcConfig:
    """ADC config with tight, jitter-free loops for quick convergence."""
    params = dict(transfer_interval=0.001, transfer_batch=1024,
                  restore_interval=0.001, restore_batch=1024,
                  interval_jitter=0.0)
    params.update(overrides)
    return AdcConfig(**params)


@dataclass
class TwoSite:
    """A main/backup array pair with a link, ready for pairing."""

    sim: Simulator
    main: StorageArray
    backup: StorageArray
    link: NetworkLink
    main_pool_id: int
    backup_pool_id: int


def build_two_site(sim, latency=0.005, adc=None,
                   pool_blocks=1_000_000) -> TwoSite:
    """Create two arrays with one pool each and a connecting link."""
    config = ArrayConfig(adc=adc or fast_adc())
    main = StorageArray(sim, serial="G370-MAIN", config=config)
    backup = StorageArray(sim, serial="G370-BKUP", config=config)
    link = NetworkLink(sim, latency=latency, name="main->backup")
    main_pool = main.create_pool(pool_blocks)
    backup_pool = backup.create_pool(pool_blocks)
    return TwoSite(sim=sim, main=main, backup=backup, link=link,
                   main_pool_id=main_pool.pool_id,
                   backup_pool_id=backup_pool.pool_id)


@pytest.fixture()
def two_site(sim):
    return build_two_site(sim)


def run(sim, generator, timeout=None):
    """Run a process generator to completion and return its result."""
    return sim.run_until_complete(sim.spawn(generator), timeout=timeout)
