"""Unit tests for volumes: block I/O, versions, roles, COW hooks."""

import pytest

from repro.errors import VolumeError
from repro.storage import MediaProfile, Volume, VolumeRole
from tests.storage.conftest import run


@pytest.fixture()
def volume(sim):
    return Volume(sim, volume_id=1, capacity_blocks=64,
                  media=MediaProfile())


class TestBlockIO:
    def test_read_unallocated_block_returns_none(self, sim, volume):
        assert run(sim, volume.read_block(0)) is None

    def test_write_then_read(self, sim, volume):
        run(sim, volume.write_block(3, b"hello"))
        assert run(sim, volume.read_block(3)) == b"hello"

    def test_write_returns_monotone_versions(self, sim, volume):
        v1 = run(sim, volume.write_block(0, b"a"))
        v2 = run(sim, volume.write_block(1, b"b"))
        v3 = run(sim, volume.write_block(0, b"c"))
        assert v1 < v2 < v3

    def test_io_takes_media_latency(self, sim, volume):
        def proc(sim):
            yield from volume.write_block(0, b"x")
            yield from volume.read_block(0)

        run(sim, proc(sim))
        expected = (volume.media.write_latency + volume.media.read_latency)
        assert sim.now == pytest.approx(expected)

    def test_block_out_of_range_rejected(self, sim, volume):
        with pytest.raises(VolumeError):
            run(sim, volume.write_block(64, b"x"))
        with pytest.raises(VolumeError):
            run(sim, volume.read_block(-1))

    def test_payload_must_be_bytes(self, sim, volume):
        with pytest.raises(VolumeError):
            run(sim, volume.write_block(0, "text"))

    def test_blocked_volume_rejects_io(self, sim, volume):
        volume.block_volume()
        with pytest.raises(VolumeError):
            run(sim, volume.read_block(0))
        volume.unblock_volume()
        assert run(sim, volume.read_block(0)) is None

    def test_explicit_version_apply(self, sim, volume):
        run(sim, volume.write_block(5, b"r", version=10))
        value = volume.peek(5)
        assert value.version == 10
        assert volume.version_counter == 10

    def test_out_of_order_apply_rejected(self, sim, volume):
        run(sim, volume.write_block(5, b"new", version=10))
        with pytest.raises(VolumeError):
            run(sim, volume.write_block(5, b"old", version=9))

    def test_host_version_continues_after_apply(self, sim, volume):
        run(sim, volume.write_block(5, b"r", version=10))
        v = run(sim, volume.write_block(6, b"h"))
        assert v == 11

    def test_used_blocks_and_counters(self, sim, volume):
        run(sim, volume.write_block(0, b"a"))
        run(sim, volume.write_block(1, b"b"))
        run(sim, volume.write_block(0, b"c"))
        assert volume.used_blocks == 2
        assert volume.writes == 3
        assert volume.allocated_blocks() == [0, 1]


class TestRoles:
    def test_simplex_is_writable(self, volume):
        assert volume.writable_by_host

    def test_svol_not_writable(self, volume):
        volume.set_role(VolumeRole.SVOL)
        assert not volume.writable_by_host

    def test_promoted_svol_writable(self, volume):
        volume.set_role(VolumeRole.SSWS)
        assert volume.writable_by_host

    def test_capacity_validation(self, sim):
        with pytest.raises(VolumeError):
            Volume(sim, 1, 0, MediaProfile())


class TestMediaProfile:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MediaProfile(read_latency=-1)
