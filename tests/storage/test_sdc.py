"""Integration tests of the synchronous data copy baseline (SDC)."""

import pytest

from repro.storage import PairState
from tests.storage.conftest import run


def make_sync_pair(site, blocks=64, mirror_id="sm-0", pair_id="sp-0"):
    pvol = site.main.create_volume(site.main_pool_id, blocks)
    svol = site.backup.create_volume(site.backup_pool_id, blocks)
    site.main.create_sync_mirror(mirror_id, site.link)
    site.main.create_sync_pair(pair_id, mirror_id, pvol.volume_id,
                               site.backup, svol.volume_id)
    return pvol, svol


class TestSyncReplication:
    def test_write_applied_before_ack(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)  # initial copy (empty)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"hello"))
        # at the instant of the ack, the backup already has the data
        assert svol.peek(0).payload == b"hello"

    def test_ack_latency_includes_round_trip(self, sim, two_site):
        """The slowdown the paper eliminates: SDC pays >= 2x link latency."""
        pvol, _svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"x"))
        summary = two_site.main.write_latency.summary()
        assert summary.maximum >= 2 * two_site.link.latency

    def test_versions_match_across_sites(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)

        def writer(sim):
            for i in range(20):
                yield from two_site.main.host_write(
                    pvol.volume_id, i % 8, b"w%d" % i)

        run(sim, writer(sim))
        assert svol.block_map() == pvol.block_map()

    def test_initial_copy_transfers_existing_blocks(self, sim, two_site):
        pvol = two_site.main.create_volume(two_site.main_pool_id, 64)
        for block in range(8):
            run(sim, two_site.main.host_write(pvol.volume_id, block,
                                              b"pre%d" % block))
        svol = two_site.backup.create_volume(two_site.backup_pool_id, 64)
        two_site.main.create_sync_mirror("sm-ic", two_site.link)
        pair = two_site.main.create_sync_pair(
            "sp-ic", "sm-ic", pvol.volume_id, two_site.backup,
            svol.volume_id)
        assert pair.state is PairState.COPY
        sim.run(until=sim.now + 1.0)
        assert pair.state is PairState.PAIR
        assert svol.block_map() == pvol.block_map()

    def test_link_failure_suspends_but_keeps_acking(self, sim, two_site):
        """Fence level 'never': replication outage must not become a
        business outage; writes continue dirty-tracked."""
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.link.fail()
        record = run(sim, two_site.main.host_write(
            pvol.volume_id, 5, b"unprotected"))
        assert record is not None
        pair = two_site.main.find_pair("sp-0")
        assert pair.state is PairState.PSUE
        assert svol.peek(5) is None
        # subsequent writes skip the link entirely
        run(sim, two_site.main.host_write(pvol.volume_id, 6, b"more"))
        assert (pvol.volume_id, 6) in pair.dirty_blocks

    def test_resync_after_link_restore(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.link.fail()
        run(sim, two_site.main.host_write(pvol.volume_id, 5, b"dirty"))
        two_site.link.restore()
        mirror = two_site.main.sync_mirrors["sm-0"]
        run(sim, mirror.resync())
        pair = two_site.main.find_pair("sp-0")
        assert pair.state is PairState.PAIR
        assert svol.peek(5).payload == b"dirty"

    def test_zero_rpo_property(self, sim, two_site):
        """Every acked write exists at the backup at disaster time."""
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)

        def writer(sim):
            for i in range(15):
                yield from two_site.main.host_write(
                    pvol.volume_id, i, b"w%d" % i)

        run(sim, writer(sim))
        two_site.main.fail()
        for record in two_site.main.history.for_volume(pvol.volume_id):
            value = svol.peek(record.block)
            assert value is not None and value.version >= record.version

    def test_split_marks_pairs_psus(self, sim, two_site):
        make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.main.sync_mirrors["sm-0"].split()
        assert two_site.main.pair_status("sp-0") is PairState.PSUS
