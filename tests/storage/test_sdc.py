"""Integration tests of the synchronous data copy baseline (SDC)."""

import pytest

from repro.storage import PairState
from tests.storage.conftest import run


def make_sync_pair(site, blocks=64, mirror_id="sm-0", pair_id="sp-0"):
    pvol = site.main.create_volume(site.main_pool_id, blocks)
    svol = site.backup.create_volume(site.backup_pool_id, blocks)
    site.main.create_sync_mirror(mirror_id, site.link)
    site.main.create_sync_pair(pair_id, mirror_id, pvol.volume_id,
                               site.backup, svol.volume_id)
    return pvol, svol


class TestSyncReplication:
    def test_write_applied_before_ack(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)  # initial copy (empty)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"hello"))
        # at the instant of the ack, the backup already has the data
        assert svol.peek(0).payload == b"hello"

    def test_ack_latency_includes_round_trip(self, sim, two_site):
        """The slowdown the paper eliminates: SDC pays >= 2x link latency."""
        pvol, _svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"x"))
        summary = two_site.main.write_latency.summary()
        assert summary.maximum >= 2 * two_site.link.latency

    def test_versions_match_across_sites(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)

        def writer(sim):
            for i in range(20):
                yield from two_site.main.host_write(
                    pvol.volume_id, i % 8, b"w%d" % i)

        run(sim, writer(sim))
        assert svol.block_map() == pvol.block_map()

    def test_initial_copy_transfers_existing_blocks(self, sim, two_site):
        pvol = two_site.main.create_volume(two_site.main_pool_id, 64)
        for block in range(8):
            run(sim, two_site.main.host_write(pvol.volume_id, block,
                                              b"pre%d" % block))
        svol = two_site.backup.create_volume(two_site.backup_pool_id, 64)
        two_site.main.create_sync_mirror("sm-ic", two_site.link)
        pair = two_site.main.create_sync_pair(
            "sp-ic", "sm-ic", pvol.volume_id, two_site.backup,
            svol.volume_id)
        assert pair.state is PairState.COPY
        sim.run(until=sim.now + 1.0)
        assert pair.state is PairState.PAIR
        assert svol.block_map() == pvol.block_map()

    def test_link_failure_suspends_but_keeps_acking(self, sim, two_site):
        """Fence level 'never': replication outage must not become a
        business outage; writes continue dirty-tracked."""
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.link.fail()
        record = run(sim, two_site.main.host_write(
            pvol.volume_id, 5, b"unprotected"))
        assert record is not None
        pair = two_site.main.find_pair("sp-0")
        assert pair.state is PairState.PSUE
        assert svol.peek(5) is None
        # subsequent writes skip the link entirely
        run(sim, two_site.main.host_write(pvol.volume_id, 6, b"more"))
        assert (pvol.volume_id, 6) in pair.dirty_blocks

    def test_resync_after_link_restore(self, sim, two_site):
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.link.fail()
        run(sim, two_site.main.host_write(pvol.volume_id, 5, b"dirty"))
        two_site.link.restore()
        mirror = two_site.main.sync_mirrors["sm-0"]
        run(sim, mirror.resync())
        pair = two_site.main.find_pair("sp-0")
        assert pair.state is PairState.PAIR
        assert svol.peek(5).payload == b"dirty"

    def test_zero_rpo_property(self, sim, two_site):
        """Every acked write exists at the backup at disaster time."""
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)

        def writer(sim):
            for i in range(15):
                yield from two_site.main.host_write(
                    pvol.volume_id, i, b"w%d" % i)

        run(sim, writer(sim))
        two_site.main.fail()
        for record in two_site.main.history.for_volume(pvol.volume_id):
            value = svol.peek(record.block)
            assert value is not None and value.version >= record.version

    def test_split_marks_pairs_psus(self, sim, two_site):
        make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.main.sync_mirrors["sm-0"].split()
        assert two_site.main.pair_status("sp-0") is PairState.PSUS


class TestDeltaNegotiatedCopy:
    """Bulk copy/resync ships (version, crc32) metadata first; blocks
    the secondary already holds current never cross the wire."""

    def test_recopy_moves_metadata_only(self, sim, two_site):
        """Re-running initial_copy over a current secondary pays the
        negotiation bytes for every block but zero payload bytes."""
        pvol, svol = make_sync_pair(two_site)
        for block in range(8):
            run(sim, two_site.main.host_write(pvol.volume_id, block,
                                              b"pre%d" % block))
        mirror = two_site.main.sync_mirrors["sm-0"]
        assert svol.block_map() == pvol.block_map()
        before = two_site.link.bytes_transferred
        skipped_before = mirror.copy_skipped.value
        run(sim, mirror.initial_copy("sp-0"))
        moved = two_site.link.bytes_transferred - before
        assert moved == 8 * mirror.config.negotiate_metadata_bytes
        assert mirror.copy_skipped.value - skipped_before == 8

    def test_resync_skips_dirty_blocks_already_current(self, sim,
                                                       two_site):
        """A dirty block whose content reached the secondary anyway
        (here: installed out of band) is skipped after negotiation;
        only the genuinely stale block pays the payload bytes."""
        pvol, svol = make_sync_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.link.fail()
        run(sim, two_site.main.host_write(pvol.volume_id, 0, b"same"))
        run(sim, two_site.main.host_write(pvol.volume_id, 1, b"stale"))
        two_site.link.restore()
        # out-of-band: the secondary already holds block 0's content
        current = pvol.peek(0)
        svol.install_block(0, current.payload, version=current.version,
                           checksum=current.checksum)
        mirror = two_site.main.sync_mirrors["sm-0"]
        before = two_site.link.bytes_transferred
        run(sim, mirror.resync())
        moved = two_site.link.bytes_transferred - before
        config = mirror.config
        assert moved == (2 * config.negotiate_metadata_bytes
                         + 1 * config.block_size_bytes)
        assert mirror.copy_skipped.value == 1
        assert svol.block_map() == pvol.block_map()
        assert two_site.main.pair_status("sp-0") is PairState.PAIR

    def test_initial_copy_of_large_volume_is_batched(self, sim,
                                                     two_site):
        """A copy of N blocks pays ~N/copy_batch_blocks round trips,
        not N: the batched path must beat per-block latency by the
        batch factor."""
        blocks = 96
        pvol = two_site.main.create_volume(two_site.main_pool_id, blocks)
        for block in range(blocks):
            run(sim, two_site.main.host_write(pvol.volume_id, block,
                                              b"x"))
        svol = two_site.backup.create_volume(two_site.backup_pool_id,
                                             blocks)
        two_site.main.create_sync_mirror("sm-bulk", two_site.link)
        started = sim.now
        pair = two_site.main.create_sync_pair(
            "sp-bulk", "sm-bulk", pvol.volume_id, two_site.backup,
            svol.volume_id)
        while not pair.initial_copy_done:
            sim.run(until=sim.now + 0.05)
        elapsed = sim.now - started
        chunks = blocks / two_site.main.config.sdc.copy_batch_blocks
        # three one-way delays per chunk (metadata, verdict, payload)
        # plus slack for media applies and the 50 ms polling grain
        assert elapsed < chunks * 3.5 * two_site.link.latency + 0.2
        assert svol.block_map() == pvol.block_map()

    def test_copy_batch_config_validated(self):
        import pytest

        from repro.storage.sdc import SdcConfig
        with pytest.raises(ValueError, match="copy_batch_blocks"):
            SdcConfig(copy_batch_blocks=0)
        with pytest.raises(ValueError, match="negotiate_metadata_bytes"):
            SdcConfig(negotiate_metadata_bytes=0)
