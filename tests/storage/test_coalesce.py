"""Transfer-side write coalescing (``AdcConfig.coalesce_overwrites``).

The optimisation collapses same-(volume, block) superseded entries
within one transfer batch so only the last writer crosses the wire.
The contract under test: for *any* write stream, the drained backup
image is block-for-block identical to the uncoalesced run — coalescing
may only change wire traffic, never the converged state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator
from tests.storage.conftest import build_two_site, fast_adc, run

#: transfer interval long enough for batches (and thus overwrite
#: windows) to build up while the host writes back-to-back
BATCHY_INTERVAL = 0.02


def build_coalesce_pair(seed: int, coalesce: bool, blocks: int = 64):
    """One ADC pair with batch-building loops; returns (site, group,
    pvol, svol)."""
    sim = Simulator(seed=seed)
    site = build_two_site(
        sim, adc=fast_adc(coalesce_overwrites=coalesce,
                          transfer_interval=BATCHY_INTERVAL,
                          restore_interval=0.001))
    pvol = site.main.create_volume(site.main_pool_id, blocks)
    svol = site.backup.create_volume(site.backup_pool_id, blocks)
    main_jnl = site.main.create_journal(site.main_pool_id, 10_000)
    backup_jnl = site.backup.create_journal(site.backup_pool_id, 10_000)
    group = site.main.create_journal_group(
        "jg-coalesce", main_jnl.journal_id, site.backup,
        backup_jnl.journal_id, site.link)
    site.main.create_async_pair("pair-coalesce", "jg-coalesce",
                                pvol.volume_id, site.backup,
                                svol.volume_id)
    return site, group, pvol, svol


def drain_writes(writes, coalesce: bool, seed: int = 11):
    """Apply ``writes`` (block, payload) through one pair, drain fully,
    and return (backup image, group counters)."""
    site, group, pvol, svol = build_coalesce_pair(seed, coalesce)

    def writer():
        for block, payload in writes:
            yield from site.main.host_write(pvol.volume_id, block, payload)

    run(site.sim, writer())
    deadline = site.sim.now + 60.0
    while group.entry_lag and site.sim.now < deadline:
        site.sim.run(until=site.sim.now + 0.05)
    assert group.entry_lag == 0, "pipeline failed to drain"
    image = {block: (value.payload, value.version)
             for block, value in svol.block_map().items()}
    return image, group


write_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.binary(min_size=1, max_size=32)),
    min_size=1, max_size=80)


class TestCoalescingEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(writes=write_streams)
    def test_backup_image_identical_for_any_stream(self, writes):
        """Property: coalescing never changes the converged image —
        payloads *and* versions match the uncoalesced run exactly."""
        plain, _ = drain_writes(writes, coalesce=False)
        coalesced, _ = drain_writes(writes, coalesce=True)
        assert coalesced == plain

    def test_hotspot_coalesces_and_converges(self):
        """A round-robin overwrite hotspot actually exercises the path:
        superseded entries are dropped, fewer bytes ship, and the image
        still equals the primary's."""
        writes = [(index % 8, b"v%04d" % index) for index in range(400)]
        plain_image, plain_group = drain_writes(writes, coalesce=False)
        co_image, co_group = drain_writes(writes, coalesce=True)
        assert co_image == plain_image
        assert co_group.coalesced_count.value > 0
        assert (co_group.transfer_bytes.value
                < plain_group.transfer_bytes.value)
        assert (co_group.transferred_count.value
                + co_group.coalesced_count.value
                == plain_group.transferred_count.value)

    def test_no_overwrites_means_nothing_coalesced(self):
        """Distinct-block streams pass through untouched — the counter
        stays zero and wire cost is identical."""
        writes = [(block, b"once-%02d" % block) for block in range(16)]
        plain_image, plain_group = drain_writes(writes, coalesce=False)
        co_image, co_group = drain_writes(writes, coalesce=True)
        assert co_image == plain_image
        assert co_group.coalesced_count.value == 0
        assert (co_group.transfer_bytes.value
                == plain_group.transfer_bytes.value)

    def test_primary_and_backup_agree_after_drain(self):
        """The paper's invariant, with coalescing on: after a full
        drain the secondary holds exactly the primary's current data."""
        writes = [(index % 12, b"w%05d" % index) for index in range(300)]
        site, group, pvol, svol = build_coalesce_pair(11, coalesce=True)

        def writer():
            for block, payload in writes:
                yield from site.main.host_write(pvol.volume_id, block,
                                                payload)

        run(site.sim, writer())
        while group.entry_lag:
            site.sim.run(until=site.sim.now + 0.05)
        for block in range(12):
            assert svol.peek(block).payload == pvol.peek(block).payload
            assert svol.peek(block).version == pvol.peek(block).version
