"""Unit tests for the StorageArray command facade: commands, audit,
handles, validation."""

import pytest

from repro.errors import (ArrayCommandError, CapacityError,
                          ReplicationError, VolumeError)
from repro.storage import ArrayConfig, StorageArray, VolumeRole
from tests.storage.conftest import run
from tests.storage.test_adc import make_async_pair


class TestVolumeCommands:
    def test_create_volume_reserves_pool(self, sim, two_site):
        array = two_site.main
        pool = array._pools[two_site.main_pool_id]
        free_before = pool.free_blocks
        array.create_volume(two_site.main_pool_id, 500)
        assert pool.free_blocks == free_before - 500

    def test_delete_volume_returns_capacity(self, sim, two_site):
        array = two_site.main
        pool = array._pools[two_site.main_pool_id]
        free_before = pool.free_blocks
        vol = array.create_volume(two_site.main_pool_id, 500)
        array.delete_volume(vol.volume_id, two_site.main_pool_id)
        assert pool.free_blocks == free_before
        assert not array.volume_exists(vol.volume_id)

    def test_delete_paired_volume_rejected(self, sim, two_site):
        pvol, _svol = make_async_pair(two_site)
        with pytest.raises(ArrayCommandError):
            two_site.main.delete_volume(pvol.volume_id,
                                        two_site.main_pool_id)

    def test_delete_volume_with_snapshot_rejected(self, sim, two_site):
        array = two_site.main
        vol = array.create_volume(two_site.main_pool_id, 64)
        array.create_snapshot(vol.volume_id)
        with pytest.raises(ArrayCommandError):
            array.delete_volume(vol.volume_id, two_site.main_pool_id)

    def test_unknown_volume_rejected(self, sim, two_site):
        with pytest.raises(VolumeError):
            two_site.main.get_volume(424242)

    def test_pool_exhaustion(self, sim):
        from repro.simulation import Simulator
        array = StorageArray(Simulator(seed=1), serial="X",
                             config=ArrayConfig())
        pool = array.create_pool(100)
        array.create_volume(pool.pool_id, 90)
        with pytest.raises(CapacityError):
            array.create_volume(pool.pool_id, 20)


class TestHandles:
    def test_handle_round_trip(self, sim, two_site):
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        handle = two_site.main.volume_handle(vol.volume_id)
        assert handle == f"naa.G370-MAIN.{vol.volume_id}"
        assert two_site.main.parse_handle(handle) == vol.volume_id

    def test_foreign_handle_rejected(self, sim, two_site):
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        handle = two_site.main.volume_handle(vol.volume_id)
        with pytest.raises(ArrayCommandError):
            two_site.backup.parse_handle(handle)


class TestPairCommands:
    def test_pairing_sets_roles(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        assert pvol.role is VolumeRole.PVOL
        assert svol.role is VolumeRole.SVOL

    def test_double_pairing_rejected(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        other = two_site.backup.create_volume(two_site.backup_pool_id, 256)
        with pytest.raises(ReplicationError):
            two_site.main.create_async_pair(
                "pair-dup", "jg-0", pvol.volume_id, two_site.backup,
                other.volume_id)

    def test_capacity_mismatch_rejected(self, sim, two_site):
        pvol = two_site.main.create_volume(two_site.main_pool_id, 64)
        svol = two_site.backup.create_volume(two_site.backup_pool_id, 32)
        jm = two_site.main.create_journal(two_site.main_pool_id, 100)
        jb = two_site.backup.create_journal(two_site.backup_pool_id, 100)
        two_site.main.create_journal_group(
            "jg-x", jm.journal_id, two_site.backup, jb.journal_id,
            two_site.link)
        with pytest.raises(ReplicationError):
            two_site.main.create_async_pair(
                "pair-x", "jg-x", pvol.volume_id, two_site.backup,
                svol.volume_id)

    def test_delete_pair_restores_simplex(self, sim, two_site):
        pvol, svol = make_async_pair(two_site)
        sim.run(until=sim.now + 0.1)
        two_site.main.delete_pair("pair-0")
        assert pvol.role is VolumeRole.SIMPLEX
        assert svol.role is VolumeRole.SIMPLEX
        assert two_site.main.find_pair("pair-0") is None

    def test_pair_status_unknown_pair(self, sim, two_site):
        with pytest.raises(ReplicationError):
            two_site.main.pair_status("ghost")

    def test_duplicate_journal_group_rejected(self, sim, two_site):
        make_async_pair(two_site)
        jm = two_site.main.create_journal(two_site.main_pool_id, 100)
        jb = two_site.backup.create_journal(two_site.backup_pool_id, 100)
        with pytest.raises(ReplicationError):
            two_site.main.create_journal_group(
                "jg-0", jm.journal_id, two_site.backup, jb.journal_id,
                two_site.link)


class TestAudit:
    def test_commands_are_audited(self, sim, two_site):
        make_async_pair(two_site)
        commands = [record.command for record in two_site.main.audit]
        assert "create_pool" in commands
        assert "create_volume" in commands
        assert "create_journal" in commands
        assert "create_journal_group" in commands
        assert "create_async_pair" in commands

    def test_audit_record_rendering(self, sim, two_site):
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        record = two_site.main.audit[-1]
        text = str(record)
        assert "create_volume" in text
        assert str(vol.volume_id) in text

    def test_host_io_is_not_audited(self, sim, two_site):
        """Data-path operations must not spam the management audit log."""
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        before = len(two_site.main.audit)
        run(sim, two_site.main.host_write(vol.volume_id, 0, b"x"))
        run(sim, two_site.main.host_read(vol.volume_id, 0))
        assert len(two_site.main.audit) == before


class TestHostIoMetrics:
    def test_read_write_counters(self, sim, two_site):
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        run(sim, two_site.main.host_write(vol.volume_id, 0, b"x"))
        payload = run(sim, two_site.main.host_read(vol.volume_id, 0))
        assert payload == b"x"
        assert two_site.main.host_writes.value == 1
        assert two_site.main.host_reads.value == 1
        assert len(two_site.main.write_latency) == 1
        assert len(two_site.main.read_latency) == 1

    def test_history_tag_recorded(self, sim, two_site):
        vol = two_site.main.create_volume(two_site.main_pool_id, 64)
        record = run(sim, two_site.main.host_write(
            vol.volume_id, 0, b"x", tag="txn-7"))
        assert record.tag == "txn-7"
        assert two_site.main.history.lookup(
            vol.volume_id, record.version).tag == "txn-7"
