"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 2025
        assert not args.screens

    def test_modes_arguments(self):
        args = build_parser().parse_args(
            ["modes", "--rtt-ms", "25", "--seed", "3"])
        assert args.rtt_ms == 25.0
        assert args.seed == 3


class TestCommands:
    def test_demo_command_prints_summary(self, capsys):
        assert main(["demo", "--seed", "2025"]) == 0
        output = capsys.readouterr().out
        assert "ICDE demonstration summary" in output
        assert "Protected" in output

    def test_demo_screens_flag(self, capsys):
        assert main(["demo", "--screens"]) == 0
        output = capsys.readouterr().out
        assert "main-site console" in output
        assert "tag-namespace" in output

    def test_modes_command(self, capsys):
        assert main(["modes", "--rtt-ms", "4.0"]) == 0
        output = capsys.readouterr().out
        assert "sdc" in output
        assert "adc-cg" in output

    def test_collapse_command(self, capsys):
        assert main(["collapse", "--disasters", "2"]) == 0
        output = capsys.readouterr().out
        assert "backup recoverability" in output
        assert "adc-nocg" in output
