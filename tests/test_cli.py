"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 2025
        assert not args.screens

    def test_modes_arguments(self):
        args = build_parser().parse_args(
            ["modes", "--rtt-ms", "25", "--seed", "3"])
        assert args.rtt_ms == 25.0
        assert args.seed == 3

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.scenario == "demo"
        assert args.format == "prom"
        assert args.probe_interval == 0.02

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "--scenario", "demo", "--json"])
        assert args.json
        assert args.seed == 2025
        assert args.chrome is None

    def test_slo_defaults(self):
        args = build_parser().parse_args(["slo"])
        assert args.seed == 7

    def test_incident_arguments(self):
        args = build_parser().parse_args(
            ["incident", "--seed", "9", "--json"])
        assert args.seed == 9
        assert args.json
        assert args.dump_dir is None

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.campaign == "quick"
        assert args.seed == 7
        assert not args.no_failover
        assert not args.soak
        assert args.seeds == 1
        assert args.jobs == 1

    def test_chaos_fanout_arguments(self):
        args = build_parser().parse_args(
            ["chaos", "--soak", "--seeds", "4", "--jobs", "2"])
        assert args.soak
        assert args.seeds == 4
        assert args.jobs == 2

    def test_perf_jobs_argument(self):
        args = build_parser().parse_args(["perf", "--quick", "--jobs", "3"])
        assert args.jobs == 3
        assert build_parser().parse_args(["perf"]).jobs == 1

    def test_chaos_rejects_unknown_preset(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--campaign", "gentle"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--preset", "gentle"])

    def test_chaos_preset_argument(self):
        args = build_parser().parse_args(["chaos", "--preset", "control"])
        assert args.preset == "control"
        assert build_parser().parse_args(["chaos"]).preset is None

    def test_chaos_transfer_window_argument(self):
        args = build_parser().parse_args(
            ["chaos", "--transfer-window", "4"])
        assert args.transfer_window == 4
        assert build_parser().parse_args(["chaos"]).transfer_window == 1

    def test_chaos_rejects_nonpositive_transfer_window(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--transfer-window", "0"])


class TestCommands:
    def test_demo_command_prints_summary(self, capsys):
        assert main(["demo", "--seed", "2025"]) == 0
        output = capsys.readouterr().out
        assert "ICDE demonstration summary" in output
        assert "Protected" in output

    def test_demo_screens_flag(self, capsys):
        assert main(["demo", "--screens"]) == 0
        output = capsys.readouterr().out
        assert "main-site console" in output
        assert "tag-namespace" in output

    def test_modes_command(self, capsys):
        assert main(["modes", "--rtt-ms", "4.0"]) == 0
        output = capsys.readouterr().out
        assert "sdc" in output
        assert "adc-cg" in output

    def test_collapse_command(self, capsys):
        assert main(["collapse", "--disasters", "2"]) == 0
        output = capsys.readouterr().out
        assert "backup recoverability" in output
        assert "adc-nocg" in output

    def test_metrics_command_prints_registry(self, capsys):
        assert main(["metrics", "--scenario", "demo"]) == 0
        output = capsys.readouterr().out
        # the acceptance criterion: host-write latency histograms,
        # journal entry-lag gauges and NSO reconcile counters all render
        assert "# TYPE repro_host_write_latency_seconds summary" in output
        assert 'repro_host_write_latency_seconds{array="G370-MAIN"' \
            in output
        assert "# TYPE repro_journal_entry_lag gauge" in output
        assert "repro_journal_entry_lag{group=" in output
        assert 'repro_reconcile_total{controller="main.namespace-' \
            'operator"}' in output
        assert "repro_nso_transitions_total{namespace=" in output

    def test_metrics_command_json_format(self, capsys):
        import json
        assert main(["metrics", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_host_writes_total"]["kind"] == "counter"
        assert snapshot["repro_journal_entry_lag"]["kind"] == "gauge"

    def test_trace_command_prints_stages_and_rpo(self, capsys):
        assert main(["trace", "--scenario", "demo"]) == 0
        output = capsys.readouterr().out
        assert "host-write" in output
        assert "restore-apply" in output
        assert "transfer-batch" in output
        assert "replication lag (RPO) from spans" in output

    def test_chaos_command_runs_quick_campaign(self, capsys):
        assert main(["chaos", "--campaign", "quick", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "chaos campaign 'quick' seed=7: PASS" in output
        assert "fault timeline" in output
        assert "invariant violations: none" in output

    def test_chaos_multi_seed_parallel_matches_serial(self, capsys):
        assert main(["chaos", "--seed", "7", "--seeds", "2",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["chaos", "--seed", "7", "--seeds", "2",
                     "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "chaos campaign 'quick' seed=7: PASS" in serial
        assert "chaos campaign 'quick' seed=8: PASS" in serial
        assert "campaigns: 2/2 passed" in serial

    def test_chaos_control_preset_runs_and_passes(self, capsys):
        assert main(["chaos", "--preset", "control", "--seed", "7",
                     "--no-failover"]) == 0
        output = capsys.readouterr().out
        assert "chaos campaign 'control' seed=7: PASS" in output
        assert "invariant violations: none" in output

    def test_chaos_rejects_nonpositive_seeds(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--seeds", "0"])

    def test_trace_chrome_export(self, capsys, tmp_path):
        import json
        path = tmp_path / "trace.json"
        assert main(["trace", "--scenario", "demo",
                     "--chrome", str(path)]) == 0
        output = capsys.readouterr().out
        assert f"[chrome trace: {path}" in output
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "host-write" in names or "host-write-batch" in names
        assert all(event["ph"] == "X" for event in events[:50])

    def test_slo_command_prints_rule_table(self, capsys):
        assert main(["slo", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "SLO rules" in output
        assert "rpo-journal-lag" in output
        assert "firing" in output and "resolved" in output
        assert "incident campaign seed=7: PASS" in output

    def test_incident_command_prints_postmortem(self, capsys):
        assert main(["incident", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "# Incident postmortem:" in output
        assert "## Timeline" in output
        assert "**fault** link-partition" in output

    def test_incident_json_and_dump_dir(self, capsys, tmp_path):
        import json
        dump = tmp_path / "flights"
        assert main(["incident", "--seed", "7", "--json",
                     "--dump-dir", str(dump)]) == 0
        postmortem = json.loads(capsys.readouterr().out)
        assert postmortem["seed"] == 7
        assert postmortem["timeline"]
        dumped = list(dump.glob("flight-*.json"))
        assert dumped, "no flight-recorder snapshots were dumped"
