"""Unit tests for the inter-site network link model."""

import pytest

from repro.simulation import LinkDownError, NetworkLink, SitePair, Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=3)


class TestNetworkLink:
    def test_latency_only_transfer(self, sim):
        link = NetworkLink(sim, latency=0.010)

        def proc(sim):
            elapsed = yield from link.transfer(1000)
            return elapsed

        result = sim.run_until_complete(sim.spawn(proc(sim)))
        assert result == pytest.approx(0.010)
        assert link.bytes_transferred == 1000
        assert link.transfer_count == 1

    def test_bandwidth_adds_serialisation_delay(self, sim):
        link = NetworkLink(sim, latency=0.010,
                           bandwidth_bytes_per_s=1_000_000)

        def proc(sim):
            return (yield from link.transfer(500_000))

        result = sim.run_until_complete(sim.spawn(proc(sim)))
        assert result == pytest.approx(0.010 + 0.5)

    def test_serialisation_is_fifo_shared(self, sim):
        link = NetworkLink(sim, latency=0.0,
                           bandwidth_bytes_per_s=1_000)
        finish = []

        def proc(sim, tag):
            yield from link.transfer(1_000)  # 1 second each on the wire
            finish.append((tag, sim.now))

        sim.spawn(proc(sim, "a"))
        sim.spawn(proc(sim, "b"))
        sim.run()
        assert finish == [("a", pytest.approx(1.0)),
                          ("b", pytest.approx(2.0))]

    def test_bandwidth_queue_is_fifo_and_depth_is_tracked(self, sim):
        """Three concurrent transfers (the pipelined window's shape)
        serialise in arrival order on the shared wire: transfer N
        arrives serialisation*N + latency after the start, and the
        queue-depth probes see all three contending."""
        link = NetworkLink(sim, latency=0.1,
                           bandwidth_bytes_per_s=1_000)
        finish = []

        def proc(sim, tag):
            yield from link.transfer(1_000)  # 1 s on the wire each
            finish.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.spawn(proc(sim, tag))
        sim.run()
        assert finish == [("a", pytest.approx(1.1)),
                          ("b", pytest.approx(2.1)),
                          ("c", pytest.approx(3.1))]
        assert link.peak_queue_depth == 3
        assert link.queue_depth == 0  # drained

    def test_latency_only_link_has_no_queue(self, sim):
        link = NetworkLink(sim, latency=0.05)

        def proc(sim):
            yield from link.transfer(10_000)

        sim.spawn(proc(sim))
        sim.spawn(proc(sim))
        sim.run()
        assert link.queue_depth == 0
        assert link.peak_queue_depth == 0

    def test_jitter_stays_in_bounds_and_is_deterministic(self):
        def sample(seed):
            sim = Simulator(seed=seed)
            link = NetworkLink(sim, latency=0.1, jitter_fraction=0.5,
                               name="j")
            return [link.one_way_delay() for _ in range(100)]

        delays = sample(9)
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert delays == sample(9)
        assert delays != sample(10)

    def test_down_link_rejects_transfer(self, sim):
        link = NetworkLink(sim, latency=0.01)
        link.fail()

        def proc(sim):
            yield from link.transfer(10)

        p = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(LinkDownError):
            _ = p.result

    def test_mid_flight_failure(self, sim):
        link = NetworkLink(sim, latency=1.0)

        def proc(sim):
            yield from link.transfer(10)

        p = sim.spawn(proc(sim))
        sim.call_at(0.5, link.fail)
        sim.run()
        with pytest.raises(LinkDownError):
            _ = p.result

    def test_restore_after_failure(self, sim):
        link = NetworkLink(sim, latency=0.01)
        link.fail()
        link.restore()
        assert link.is_up

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            NetworkLink(sim, latency=-1)
        with pytest.raises(ValueError):
            NetworkLink(sim, latency=0, bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkLink(sim, latency=0, jitter_fraction=1.5)

    def test_negative_payload_rejected(self, sim):
        link = NetworkLink(sim, latency=0.01)

        def proc(sim):
            yield from link.transfer(-5)

        p = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(ValueError):
            _ = p.result

    def test_round_trip_is_twice_one_way(self, sim):
        link = NetworkLink(sim, latency=0.020)
        assert link.round_trip() == pytest.approx(0.040)


class TestSitePair:
    def test_fail_and_restore_both_directions(self, sim):
        pair = SitePair(sim, latency=0.01)
        assert pair.is_up
        pair.fail()
        assert not pair.forward.is_up
        assert not pair.backward.is_up
        assert not pair.is_up
        pair.restore()
        assert pair.is_up
