"""Unit tests for named RNG streams."""

import pytest

from repro.simulation import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_mapping(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngRegistry:
    def test_streams_are_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_are_independent(self):
        """Draws from stream A must not perturb stream B."""
        reg1 = RngRegistry(5)
        _ = [reg1.uniform("a", 0, 1) for _ in range(100)]
        b_after_a = [reg1.uniform("b", 0, 1) for _ in range(10)]

        reg2 = RngRegistry(5)
        b_alone = [reg2.uniform("b", 0, 1) for _ in range(10)]
        assert b_after_a == b_alone

    def test_helpers(self):
        reg = RngRegistry(3)
        assert 0 <= reg.uniform("u", 0, 1) <= 1
        assert reg.expovariate("e", 10.0) > 0
        assert reg.choice("c", ["only"]) == "only"
        assert 1 <= reg.randint("r", 1, 3) <= 3

    def test_jitter_bounds(self):
        reg = RngRegistry(4)
        for _ in range(200):
            value = reg.jitter("j", 10.0, 0.25)
            assert 7.5 <= value <= 12.5

    def test_jitter_validation(self):
        reg = RngRegistry(4)
        with pytest.raises(ValueError):
            reg.jitter("j", -1.0, 0.5)
        with pytest.raises(ValueError):
            reg.jitter("j", 1.0, 2.0)
