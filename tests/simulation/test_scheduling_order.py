"""Scheduling-order guarantees of the typed-entry / now-queue kernel.

The kernel overhaul replaced per-event closures with typed queue
entries and routed zero-delay work through a FIFO now-queue.  The
contract is that none of this is *observable*: every program fires in
exactly the order the original heap-only kernel produced.  These tests
pin that contract:

* a hypothesis property test replays interleaved streams of
  ``timeout(0)``, ``call_after(0, ...)``, event-succeed callbacks and
  positive-delay timeouts against an embedded reference implementation
  of the old heap-only scheduler;
* ``sim.sleep`` (the Timeout-free fast path) must produce histories
  identical to ``yield sim.timeout`` for the same seed;
* ``run_until_complete(timeout=...)`` advances the clock to the
  deadline before raising, so repeated calls tile simulated time;
* cancelled ``call_at`` tombstones are invisible: excluded from
  ``pending_events``/``peek`` and unable to mask a real deadlock or
  advance the clock.
"""

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimTimeError
from repro.simulation import Simulator

# ---------------------------------------------------------------------------
# reference implementation: the pre-overhaul heap-only scheduler
# ---------------------------------------------------------------------------


class _RefKernel:
    """The old kernel's scheduling semantics, minimally.

    One heap of ``(when, seq, thunk)`` — every scheduling action,
    including zero-delay callback delivery, pushes a closure with the
    next global sequence number and the loop pops in ``(when, seq)``
    order.  This is what ``Simulator`` did before the typed-entry /
    now-queue overhaul, and remains the ordering oracle.
    """

    def __init__(self):
        self.now = 0.0
        self._queue = []
        self._sequence = itertools.count()

    def push(self, delay, thunk):
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._sequence), thunk))

    def run(self):
        while self._queue:
            when, _seq, thunk = heapq.heappop(self._queue)
            self.now = when
            thunk()


class _RefEvent:
    """Old-kernel event: succeed schedules each callback at delay 0."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.fired = False
        self.callbacks = []

    def add_callback(self, callback):
        if self.fired:
            self.kernel.push(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def succeed(self):
        assert not self.fired
        self.fired = True
        for callback in self.callbacks:
            self.kernel.push(0.0, lambda cb=callback: cb(self))


class _RefAdapter:
    """Drives the reference kernel through the shared program shape."""

    def __init__(self):
        self.kernel = _RefKernel()

    def timeout_cb(self, delay, fn):
        event = _RefEvent(self.kernel)
        event.add_callback(fn)
        self.kernel.push(delay, event.succeed)

    def call_after(self, delay, fn):
        self.kernel.push(delay, fn)

    def event_succeed_after(self, delay, fn):
        event = _RefEvent(self.kernel)
        event.add_callback(fn)
        self.kernel.push(delay, event.succeed)
        return event

    def run(self):
        self.kernel.run()

    @property
    def now(self):
        return self.kernel.now


class _RealAdapter:
    """Drives the production kernel through the shared program shape."""

    def __init__(self):
        self.sim = Simulator(seed=1)

    def timeout_cb(self, delay, fn):
        self.sim.timeout(delay).add_callback(fn)

    def call_after(self, delay, fn):
        self.sim.call_after(delay, fn)

    def event_succeed_after(self, delay, fn):
        event = self.sim.event()
        event.add_callback(fn)
        self.sim.call_after(delay, lambda: event.succeed())
        return event

    def run(self):
        self.sim.run()

    @property
    def now(self):
        return self.sim.now


# op kinds: what each scheduled cell does when built
_TIMEOUT_CB, _CALL_AFTER, _EVENT_SUCCEED = range(3)

#: delays are drawn from a tiny grid so same-instant ties are the rule,
#: not the exception — ties are exactly where heap-vs-now-queue order
#: could diverge
_DELAYS = st.sampled_from([0.0, 0.0, 0.001, 0.002])

_OP = st.tuples(st.integers(min_value=0, max_value=2), _DELAYS)

#: each op may carry child ops scheduled from inside its callback —
#: that is the case where the now-queue holds work while the heap has
#: entries due at the same instant
_PROGRAM = st.lists(
    st.tuples(_OP, st.lists(_OP, max_size=3)), min_size=1, max_size=12)


def _build(adapter, program):
    """Schedule ``program`` on ``adapter``; returns the firing log."""
    order = []
    counter = itertools.count()

    def schedule(op, children):
        kind, delay = op
        label = next(counter)

        def fired(*_args):
            order.append((label, adapter.now))
            for child in children:
                schedule(child, [])

        if kind == _TIMEOUT_CB:
            adapter.timeout_cb(delay, fired)
        elif kind == _CALL_AFTER:
            adapter.call_after(delay, fired)
        else:
            adapter.event_succeed_after(delay, fired)

    for op, children in program:
        schedule(op, children)
    return order


class TestHeapOnlyEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(program=_PROGRAM)
    def test_fires_in_heap_only_kernel_order(self, program):
        real = _RealAdapter()
        real_order = _build(real, program)
        real.run()

        reference = _RefAdapter()
        ref_order = _build(reference, program)
        reference.run()

        assert real_order == ref_order

    def test_nowq_yields_to_older_heap_entry_at_same_instant(self):
        # a call_at sitting in the heap, due now, with an older seq
        # must fire before a younger now-queue entry — the exact
        # interleave rule the run loop implements
        sim = Simulator(seed=1)
        order = []
        sim.call_after(0.001, lambda: order.append("heap-older"))

        def proc(sim):
            yield sim.timeout(0.001)
            order.append("process")

        sim.spawn(proc(sim))
        sim.run()
        assert order == ["heap-older", "process"]


class TestSleepVsTimeout:
    @staticmethod
    def _history(use_sleep, seed=11, processes=3, steps=25):
        sim = Simulator(seed=seed)
        history = []

        def pacer(sim, index):
            stream = f"pacer-{index}"
            for step in range(steps):
                delay = sim.rng.jitter(stream, 0.002 * (index + 1), 0.5)
                if use_sleep:
                    yield sim.sleep(delay)
                else:
                    yield sim.timeout(delay)
                history.append((index, step, round(sim.now, 12)))

        for index in range(processes):
            sim.spawn(pacer(sim, index), name=f"pacer-{index}")
        sim.run()
        return history, sim.now

    def test_sleep_history_identical_to_timeout(self):
        timeout_history, timeout_end = self._history(use_sleep=False)
        sleep_history, sleep_end = self._history(use_sleep=True)
        assert sleep_history == timeout_history
        assert sleep_end == timeout_end

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sleep_equivalence_across_seeds(self, seed):
        timeout_history, _ = self._history(use_sleep=False, seed=seed,
                                           processes=2, steps=10)
        sleep_history, _ = self._history(use_sleep=True, seed=seed,
                                         processes=2, steps=10)
        assert sleep_history == timeout_history

    def test_negative_sleep_raises(self):
        sim = Simulator(seed=1)
        with pytest.raises(SimTimeError):
            sim.sleep(-0.1)


class TestRunUntilCompleteTiling:
    def test_timeout_advances_clock_to_deadline(self):
        sim = Simulator(seed=1)

        def proc(sim):
            yield sim.timeout(100.0)

        with pytest.raises(SimTimeError):
            sim.run_until_complete(sim.spawn(proc(sim)), timeout=1.0)
        assert sim.now == 1.0

    def test_repeated_timeouts_tile_time(self):
        # the regression: before the fix the clock stuck at the last
        # *event* time, so back-to-back timeouts measured from a stale
        # now and the deadlines drifted earlier than wall of the caller
        sim = Simulator(seed=1)

        def proc(sim):
            yield sim.timeout(100.0)

        process = sim.spawn(proc(sim))
        for expected in (1.0, 2.5, 3.5):
            with pytest.raises(SimTimeError):
                sim.run_until_complete(
                    process, timeout=expected - sim.now)
            assert sim.now == expected
        # the same tiling run(until=...) guarantees
        assert sim.run(until=4.0) == 4.0


class TestCancelledTombstones:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator(seed=1)
        keep = sim.call_after(1.0, lambda: None)
        drop = sim.call_after(2.0, lambda: None)
        assert sim.pending_events == 2
        drop.cancel()
        assert sim.pending_events == 1
        drop.cancel()  # idempotent: counted exactly once
        assert sim.pending_events == 1
        keep.cancel()
        assert sim.pending_events == 0

    def test_peek_skips_cancelled_head(self):
        sim = Simulator(seed=1)
        first = sim.call_after(1.0, lambda: None)
        sim.call_after(2.0, lambda: None)
        assert sim.peek() == 1.0
        first.cancel()
        assert sim.peek() == 2.0

    def test_cancelled_handle_does_not_mask_deadlock(self):
        # the satellite's motivating bug: a cancelled handle used to
        # count as pending work, so run_until_complete span forever
        # (or mis-reported) instead of raising DeadlockError
        sim = Simulator(seed=1)
        handle = sim.call_after(5.0, lambda: None)
        handle.cancel()

        def waits_forever(sim):
            yield sim.event()

        with pytest.raises(DeadlockError):
            sim.run_until_complete(sim.spawn(waits_forever(sim)))

    def test_dropping_tombstone_does_not_advance_clock(self):
        sim = Simulator(seed=1)
        handle = sim.call_after(10.0, lambda: None)
        sim.call_after(2.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.now == 2.0
