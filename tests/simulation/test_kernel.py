"""Unit tests for the discrete-event kernel: clock, events, processes."""

import pytest

from repro.errors import (DeadlockError, Interrupted, ProcessError,
                          SimTimeError)
from repro.simulation import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=42)


class TestClockAndRun:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_empty_queue_returns_now(self, sim):
        assert sim.run() == 0.0

    def test_run_until_advances_clock_even_without_events(self, sim):
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    def test_run_until_in_the_past_raises(self, sim):
        sim.run(until=3.0)
        with pytest.raises(SimTimeError):
            sim.run(until=1.0)

    def test_events_processed_in_time_order(self, sim):
        seen = []
        sim.call_at(2.0, lambda: seen.append("b"))
        sim.call_at(1.0, lambda: seen.append("a"))
        sim.call_at(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        seen = []
        for tag in range(5):
            sim.call_at(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_call_after_negative_delay_raises(self, sim):
        with pytest.raises(SimTimeError):
            sim.call_after(-1.0, lambda: None)

    def test_call_at_in_past_raises(self, sim):
        sim.run(until=10.0)
        with pytest.raises(SimTimeError):
            sim.call_at(5.0, lambda: None)

    def test_callback_handle_cancel(self, sim):
        seen = []
        handle = sim.call_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_stop_halts_run(self, sim):
        seen = []
        sim.call_at(1.0, lambda: (seen.append(1), sim.stop()))
        sim.call_at(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []

        def proc(sim):
            value = yield ev
            got.append(value)

        sim.spawn(proc(sim))
        sim.call_at(1.0, lambda: ev.succeed("payload"))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(ProcessError):
            ev.succeed(2)

    def test_fail_raises_inside_process(self, sim):
        ev = sim.event()
        caught = []

        def proc(sim):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(proc(sim))
        sim.call_at(1.0, lambda: ev.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(ProcessError):
            _ = sim.event().value

    def test_timeout_fires_at_offset(self, sim):
        times = []

        def proc(sim):
            yield sim.timeout(2.5)
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert times == [2.5]

    def test_negative_timeout_raises(self, sim):
        with pytest.raises(SimTimeError):
            sim.timeout(-0.1)

    def test_all_of_waits_for_every_event(self, sim):
        done = []

        def proc(sim):
            t1 = sim.timeout(1.0, value="a")
            t2 = sim.timeout(3.0, value="b")
            results = yield sim.all_of([t1, t2])
            done.append((sim.now, sorted(results.values())))

        sim.spawn(proc(sim))
        sim.run()
        assert done == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self, sim):
        done = []

        def proc(sim):
            t1 = sim.timeout(1.0, value="fast")
            t2 = sim.timeout(3.0, value="slow")
            results = yield sim.any_of([t1, t2])
            done.append((sim.now, list(results.values())))

        sim.spawn(proc(sim))
        sim.run()
        assert done == [(1.0, ["fast"])]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def proc(sim):
            yield sim.all_of([])
            done.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert done == [0.0]


class TestProcesses:
    def test_return_value_via_join(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            return 99

        def parent(sim):
            value = yield sim.spawn(child(sim))
            return value * 2

        proc = sim.spawn(parent(sim))
        sim.run()
        assert proc.result == 198

    def test_run_until_complete_returns_result(self, sim):
        def proc(sim):
            yield sim.timeout(4.0)
            return "ok"

        assert sim.run_until_complete(sim.spawn(proc(sim))) == "ok"
        assert sim.now == 4.0

    def test_run_until_complete_deadlock_detection(self, sim):
        def proc(sim):
            yield sim.event()  # never fires

        with pytest.raises(DeadlockError):
            sim.run_until_complete(sim.spawn(proc(sim)))

    def test_run_until_complete_timeout(self, sim):
        def proc(sim):
            yield sim.timeout(100.0)

        with pytest.raises(SimTimeError):
            sim.run_until_complete(sim.spawn(proc(sim)), timeout=1.0)

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(ProcessError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_process_failure_propagates_to_joiner(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        def parent(sim):
            try:
                yield sim.spawn(bad(sim))
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = sim.spawn(parent(sim))
        sim.run()
        assert proc.result == "caught kaput"

    def test_result_of_failed_process_raises(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        proc = sim.spawn(bad(sim))
        sim.run()
        assert not proc.alive
        with pytest.raises(RuntimeError):
            _ = proc.result

    def test_yield_invalid_target_fails_process(self, sim):
        def bad(sim):
            yield 42

        proc = sim.spawn(bad(sim))
        sim.run()
        with pytest.raises(ProcessError):
            _ = proc.result

    def test_bare_yield_resumes_same_time(self, sim):
        times = []

        def proc(sim):
            yield None
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert times == [0.0]

    def test_interrupt_raises_interrupted_with_cause(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupted as exc:
                log.append((exc.cause, sim.now))

        proc = sim.spawn(sleeper(sim))
        sim.call_at(2.0, lambda: proc.interrupt("wake up"))
        sim.run()
        assert log == [("wake up", 2.0)]

    def test_interrupt_dead_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(0.5)

        proc = sim.spawn(quick(sim))
        sim.run()
        with pytest.raises(ProcessError):
            proc.interrupt()

    def test_uncaught_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(100.0)

        proc = sim.spawn(sleeper(sim))
        sim.call_at(1.0, lambda: proc.interrupt("die"))
        sim.run()
        with pytest.raises(Interrupted):
            _ = proc.result

    def test_stale_wakeup_after_interrupt_is_dropped(self, sim):
        """A process interrupted out of a timeout must not be resumed again
        when the original timeout later fires."""
        steps = []

        def proc(sim):
            try:
                yield sim.timeout(5.0)
            except Interrupted:
                steps.append(("interrupted", sim.now))
            yield sim.timeout(10.0)
            steps.append(("woke", sim.now))

        p = sim.spawn(proc(sim))
        sim.call_at(1.0, lambda: p.interrupt())
        sim.run()
        assert steps == [("interrupted", 1.0), ("woke", 11.0)]

    def test_determinism_same_seed_same_history(self):
        def run_once():
            sim = Simulator(seed=7)
            order = []

            def worker(sim, tag):
                for _ in range(3):
                    delay = sim.rng.uniform(f"w{tag}", 0.1, 1.0)
                    yield sim.timeout(delay)
                    order.append((tag, round(sim.now, 9)))

            for tag in range(4):
                sim.spawn(worker(sim, tag))
            sim.run()
            return order

        assert run_once() == run_once()


class TestTrace:
    def test_trace_records_spawns(self):
        sim = Simulator(seed=1, trace=True)

        def noop(sim):
            yield sim.timeout(1.0)

        sim.spawn(noop(sim), name="alpha")
        sim.run()
        spawns = list(sim.trace.matching("spawn"))
        assert len(spawns) == 1
        assert spawns[0].detail["process"] == "alpha"
        assert "alpha" in sim.trace.dump()
