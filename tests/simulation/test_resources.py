"""Unit tests for Lock/Semaphore/Store/Gate synchronisation primitives."""

import pytest

from repro.errors import ProcessError
from repro.simulation import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestSemaphoreAndLock:
    def test_semaphore_capacity_validation(self, sim):
        from repro.simulation import Semaphore
        with pytest.raises(ValueError):
            Semaphore(sim, capacity=0)

    def test_lock_mutual_exclusion(self, sim):
        from repro.simulation import Lock
        lock = Lock(sim)
        timeline = []

        def worker(sim, tag, hold):
            yield lock.acquire()
            timeline.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            timeline.append((tag, "out", sim.now))
            lock.release()

        sim.spawn(worker(sim, "a", 2.0))
        sim.spawn(worker(sim, "b", 1.0))
        sim.run()
        assert timeline == [
            ("a", "in", 0.0), ("a", "out", 2.0),
            ("b", "in", 2.0), ("b", "out", 3.0),
        ]

    def test_lock_locked_property(self, sim):
        from repro.simulation import Lock
        lock = Lock(sim)
        assert not lock.locked
        lock.acquire()
        assert lock.locked
        lock.release()
        assert not lock.locked

    def test_release_without_acquire_raises(self, sim):
        from repro.simulation import Lock
        with pytest.raises(ProcessError):
            Lock(sim).release()

    def test_semaphore_admits_up_to_capacity(self, sim):
        from repro.simulation import Semaphore
        sem = Semaphore(sim, capacity=2)
        active = []
        peak = []

        def worker(sim, tag):
            yield sem.acquire()
            active.append(tag)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.remove(tag)
            sem.release()

        for tag in range(5):
            sim.spawn(worker(sim, tag))
        sim.run()
        assert max(peak) == 2
        assert sem.available == 2

    def test_cancel_acquire_withdraws_waiter(self, sim):
        from repro.simulation import Lock
        lock = Lock(sim)
        lock.acquire()  # held
        waiting = lock.acquire()
        assert waiting.pending
        assert lock.cancel_acquire(waiting)
        lock.release()
        # the cancelled waiter was skipped: the unit is free again
        assert not lock.locked
        assert waiting.pending  # never granted

    def test_cancel_acquire_refuses_granted_event(self, sim):
        from repro.simulation import Lock
        lock = Lock(sim)
        granted = lock.acquire()
        assert granted.triggered
        assert not lock.cancel_acquire(granted)
        lock.release()

    def test_fifo_handoff(self, sim):
        from repro.simulation import Lock
        lock = Lock(sim)
        order = []

        def worker(sim, tag):
            yield lock.acquire()
            order.append(tag)
            yield sim.timeout(0.1)
            lock.release()

        for tag in range(6):
            sim.spawn(worker(sim, tag))
        sim.run()
        assert order == list(range(6))


class TestStore:
    def test_put_then_get(self, sim):
        from repro.simulation import Store
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((item, sim.now))

        def producer(sim):
            yield sim.timeout(2.0)
            yield store.put("job")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert got == [("job", 2.0)]

    def test_fifo_item_order(self, sim):
        from repro.simulation import Store
        store = Store(sim)
        for i in range(4):
            store.put(i)
        got = []

        def consumer(sim):
            for _ in range(4):
                item = yield store.get()
                got.append(item)

        sim.spawn(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_bounded_store_blocks_putter(self, sim):
        from repro.simulation import Store
        store = Store(sim, capacity=1)
        events = []

        def producer(sim):
            yield store.put("a")
            events.append(("put-a", sim.now))
            yield store.put("b")
            events.append(("put-b", sim.now))

        def consumer(sim):
            yield sim.timeout(5.0)
            item = yield store.get()
            events.append((f"got-{item}", sim.now))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert ("put-a", 0.0) in events
        assert ("put-b", 5.0) in events

    def test_try_get_and_try_put(self, sim):
        from repro.simulation import Store
        store = Store(sim, capacity=1)
        ok, item = store.try_get()
        assert not ok and item is None
        assert store.try_put("x")
        assert not store.try_put("y")
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_drain_empties_store(self, sim):
        from repro.simulation import Store
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert store.drain() == [0, 1, 2]
        assert len(store) == 0

    def test_capacity_validation(self, sim):
        from repro.simulation import Store
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestGate:
    def test_open_gate_passes_immediately(self, sim):
        from repro.simulation import Gate
        gate = Gate(sim, open_=True)
        times = []

        def proc(sim):
            yield gate.wait()
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert times == [0.0]

    def test_closed_gate_blocks_until_open(self, sim):
        from repro.simulation import Gate
        gate = Gate(sim, open_=False)
        times = []

        def proc(sim):
            yield gate.wait()
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.spawn(proc(sim))
        sim.call_at(3.0, gate.open)
        sim.run()
        assert times == [3.0, 3.0]

    def test_gate_reusable(self, sim):
        from repro.simulation import Gate
        gate = Gate(sim)
        times = []

        def proc(sim):
            yield gate.wait()
            times.append(sim.now)
            gate.close()
            yield sim.timeout(1.0)
            yield gate.wait()
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.call_at(5.0, gate.open)
        sim.run()
        assert times == [0.0, 5.0]
