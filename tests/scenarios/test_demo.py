"""Integration test of the scripted ICDE demonstration (Figs 2-6)."""

import pytest

from repro.scenarios import run_demo
from repro.scenarios.builders import SystemConfig
from repro.scenarios.business import BusinessConfig
from repro.storage import AdcConfig, ArrayConfig


def quick_demo(seed=2025):
    """The demo with tightened timers so the test stays fast."""
    adc = AdcConfig(transfer_interval=0.002, transfer_batch=1024,
                    restore_interval=0.001, restore_batch=1024,
                    interval_jitter=0.2)
    return run_demo(
        seed=seed,
        system_config=SystemConfig(link_latency=0.002,
                                   array=ArrayConfig(adc=adc),
                                   command_latency=0.010),
        business_config=BusinessConfig(wal_blocks=20_000),
        analytics_delay=0.2)


@pytest.fixture(scope="module")
def demo():
    return quick_demo()


class TestDemonstration:
    def test_fig3_to_fig4_pvs_appear_after_tagging(self, demo):
        assert demo.result.backup_pvs_before == []
        assert len(demo.result.backup_pvs_after) == 4

    def test_namespace_reaches_protected(self, demo):
        assert demo.result.namespace_state == "Protected"
        assert demo.result.configuration_seconds > 0

    def test_fig5_snapshot_group_is_consistent_cut(self, demo):
        assert demo.result.snapshot_group is not None
        assert len(demo.result.snapshot_group.snapshots) == 4
        assert demo.result.snapshot_cut.consistent

    def test_fig6_analytics_report_over_snapshots(self, demo):
        report = demo.result.analytics
        assert report is not None
        assert report.order_count > 0
        assert report.total_revenue > 0
        assert report.top_seller() is not None
        assert report.scan_seconds > 0

    def test_transaction_window_never_stopped(self, demo):
        """The paper's point: backup + analytics with zero downtime."""
        assert demo.result.orders_during_demo > 0
        assert demo.result.orders_after_analytics > 0

    def test_screens_show_single_tag_operation(self, demo):
        main_screen = demo.result.screens["main"]
        assert main_screen.count("tag-namespace") == 1
        backup_screen = demo.result.screens["backup"]
        assert "create-snapshot-group" in backup_screen

    def test_analytics_matches_a_committed_prefix(self, demo):
        """The analytics answer corresponds to a prefix of the committed
        orders — never a torn state."""
        report = demo.result.analytics
        committed = demo.business.app.coordinator.committed_gtids
        assert report.order_count <= len(committed)
        # revenue must equal the sum over some subset of real orders;
        # with a consistent prefix it is exactly the first N orders'
        # revenue for N = report.order_count -- verified indirectly by
        # the snapshot cut check; here we sanity-check magnitude
        assert report.order_count >= 1
