"""The deterministic fan-out contract of :mod:`repro.bench.parallel`.

Every consumer (E1/E7 cell grids, the perf suite, chaos campaign
seeds) depends on one property: a parallel run merges to *exactly* the
serial result, because results return in input order and every cell
derives all randomness from the seed inside its argument.  Workloads
here are deliberately tiny — the property under test is identity, not
speed.
"""

import json

import pytest

from repro.bench.parallel import ParallelRunner, resolve_jobs

# top-level so the fork/spawn pool can pickle it


def _square(cell):
    return cell * cell


def _labelled(cell):
    index, label = cell
    return f"{label}-{index}"


class TestParallelRunner:
    def test_inline_path_runs_without_multiprocessing(self):
        assert ParallelRunner(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_results_in_input_order(self):
        cells = [(index, "cell") for index in range(8)]
        expected = [_labelled(cell) for cell in cells]
        assert ParallelRunner(4).map(_labelled, cells) == expected

    def test_parallel_matches_serial(self):
        cells = list(range(7))
        serial = ParallelRunner(1).map(_square, cells)
        parallel = ParallelRunner(3).map(_square, cells)
        assert parallel == serial

    def test_empty_and_single_cell(self):
        assert ParallelRunner(4).map(_square, []) == []
        assert ParallelRunner(4).map(_square, [5]) == [25]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # 0 = one per CPU
        with pytest.raises(ValueError):
            resolve_jobs(-1)


def _facts_fingerprint(facts):
    return json.dumps(facts, sort_keys=True, default=repr)


class TestExperimentFanOut:
    def test_e1_parallel_merge_identical(self):
        from repro.bench import run_e1_slowdown
        kwargs = dict(rtt_ms_values=(1.0, 10.0), duration=0.08,
                      clients=2)
        serial_table, serial_facts = run_e1_slowdown(jobs=1, **kwargs)
        parallel_table, parallel_facts = run_e1_slowdown(jobs=2, **kwargs)
        assert parallel_table.rows == serial_table.rows
        assert _facts_fingerprint(parallel_facts) == \
            _facts_fingerprint(serial_facts)

    def test_e7_parallel_merge_identical(self):
        from repro.bench import run_e7_journal
        kwargs = dict(intervals_ms=(5.0, 20.0), seeds=(700, 701),
                      load_time=0.08)
        serial_table, serial_facts = run_e7_journal(jobs=1, **kwargs)
        parallel_table, parallel_facts = run_e7_journal(jobs=3, **kwargs)
        assert parallel_table.rows == serial_table.rows
        assert _facts_fingerprint(parallel_facts) == \
            _facts_fingerprint(serial_facts)


class TestChaosFanOut:
    def test_campaign_reports_identical_and_seed_ordered(self):
        from repro.chaos import run_campaigns
        seeds = [7, 8]
        serial = run_campaigns(seeds, preset="quick", jobs=1)
        parallel = run_campaigns(seeds, preset="quick", jobs=2)
        assert [r.seed for r in parallel] == seeds
        for a, b in zip(serial, parallel):
            assert a.digest == b.digest
            assert a.render() == b.render()

    def test_unknown_preset_rejected(self):
        from repro.chaos import run_campaigns
        with pytest.raises(ValueError):
            run_campaigns([1], preset="nope")


class TestPerfFanOut:
    def test_jobs_preserves_suite_structure(self):
        # values are wall-clock and contention-dependent; the contract
        # for perf is structural identity: same benchmarks, same units,
        # same directions, same table columns/ordering
        from repro.bench.perf import _SIZES, _SUITE, run_perf
        original = _SIZES["quick"]
        tiny = dict(original)
        tiny.update(journal_entries=2_000, kernel_events=2_000,
                    restore_entries=300, e1_duration=0.02)
        _SIZES["quick"] = tiny
        try:
            serial_table, serial = run_perf(quick=True, jobs=1)
            parallel_table, parallel = run_perf(quick=True, jobs=2)
        finally:
            _SIZES["quick"] = original
        assert set(serial["metrics"]) == {spec[0] for spec in _SUITE}
        assert set(parallel["metrics"]) == set(serial["metrics"])
        for name in serial["metrics"]:
            for key in ("unit", "higher_is_better"):
                assert parallel["metrics"][name][key] == \
                    serial["metrics"][name][key]
        assert parallel_table.columns == serial_table.columns
        assert [row[0] for row in parallel_table.rows] == \
            [row[0] for row in serial_table.rows]
