"""Unit tests for the benchmark harness: tables and mode setups."""

import pytest

from repro.bench import (MODE_ADC_CG, MODE_NONE, MODE_SDC, Table,
                         build_business_system, experiment_config)
from repro.errors import ReproError


class TestTable:
    def test_add_row_validates_arity(self):
        table = Table(title="t", columns=("a", "b"))
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table(title="t", columns=("a", "b"))
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_render_contains_everything(self):
        table = Table(title="results", columns=("name", "value"))
        table.add_row("alpha", 1.5)
        table.note("a footnote")
        text = table.render()
        assert "results" in text
        assert "alpha" in text
        assert "1.500" in text
        assert "a footnote" in text

    def test_render_markdown_shape(self):
        table = Table(title="results", columns=("a", "b"))
        table.add_row(1234.5, 0)
        md = table.render_markdown()
        assert "|---|---|" in md
        assert "| 1,234 | 0 |" in md

    def test_float_formatting_tiers(self):
        table = Table(title="t", columns=("v",))
        table.add_row(0.123456)
        table.add_row(12.3456)
        table.add_row(12345.6)
        rendered = table.render()
        assert "0.123" in rendered
        assert "12.3" in rendered
        assert "12,346" in rendered


class TestSetups:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            build_business_system(seed=1, mode="quantum")

    def test_none_mode_has_no_replication(self):
        experiment = build_business_system(seed=1, mode=MODE_NONE)
        assert experiment.system.main.array.journal_groups == {}
        assert experiment.system.main.array.sync_mirrors == {}

    def test_adc_cg_mode_reaches_paired(self):
        experiment = build_business_system(seed=2, mode=MODE_ADC_CG)
        groups = [g for gid, g in
                  experiment.system.main.array.journal_groups.items()
                  if gid.startswith("jg-")]
        assert len(groups) == 1
        assert len(groups[0].pairs) == 4

    def test_sdc_mode_registers_backup_pvs(self):
        from repro.platform import PersistentVolume
        experiment = build_business_system(seed=3, mode=MODE_SDC)
        mirror = experiment.system.main.array.sync_mirrors[
            "sdc-business"]
        assert len(mirror.pairs) == 4
        pvs = experiment.system.backup.api.list(PersistentVolume)
        assert len(pvs) == 4

    def test_experiment_config_overrides(self):
        config = experiment_config(link_latency=0.010,
                                   adc_overrides={"transfer_interval":
                                                  0.5})
        assert config.link_latency == 0.010
        assert config.array.adc.transfer_interval == 0.5
