"""Control-plane chaos: fault catalog units and full campaigns.

The data-plane campaigns prove the arrays survive broken links and
corrupted wires; these prove the *orchestration* layer survives a dead
API server, crashed controllers, severed watches and ambiguous CSI
RPCs — and that afterwards every CR converges back to ``Paired`` with
exactly one pair per volume (the reconcile-convergence and
exactly-once-pairing invariants the engine now always checks).
"""

import pytest

from repro.chaos import (ApiFlake, ApiServerOutage, ChaosEngine,
                         ControllerCrash, CsiRpcFlake, FaultPlan,
                         WatchDrop, build_chaos_environment, build_plan,
                         run_campaign)
from repro.chaos.plan import CONTROL, PRESETS
from repro.errors import UnavailableError
from repro.platform import Namespace


class TestFaultCatalog:
    def test_api_outage_is_fail_closed_and_heals(self):
        env = build_chaos_environment(seed=5)
        fault = ApiServerOutage(0.1, 0.2)
        fault.inject(env)
        api = env.system.main.cluster.api
        ns = Namespace()
        ns.meta.name = "blocked"
        with pytest.raises(UnavailableError):
            api.create(ns)
        with pytest.raises(UnavailableError):
            api.get(Namespace, "blocked")  # reads are down too
        fault.heal(env)
        assert api.try_get(Namespace, "blocked") is None  # nothing landed
        api.create(ns)
        assert api.get(Namespace, "blocked").meta.name == "blocked"

    def test_api_flake_sets_and_clears_probabilities(self):
        env = build_chaos_environment(seed=5)
        fault = ApiFlake(0.1, 0.2, flake_probability=0.4,
                         conflict_probability=0.2)
        detail = fault.inject(env)
        injector = env.system.main.cluster.api.chaos
        assert injector.flake_probability == 0.4
        assert injector.conflict_probability == 0.2
        assert "40%" in detail
        fault.heal(env)
        assert injector.flake_probability == 0.0
        assert injector.conflict_probability == 0.0

    def test_api_flake_validates_probabilities(self):
        with pytest.raises(ValueError):
            ApiFlake(0.1, 0.2, flake_probability=1.5)
        with pytest.raises(ValueError):
            ApiFlake(0.1, 0.2, conflict_probability=-0.1)

    def test_controller_crash_kills_and_restart_requeues(self):
        env = build_chaos_environment(seed=5)
        manager = env.system.main.cluster.manager
        assert manager.controllers  # the operator + plugins are running
        fault = ControllerCrash(0.1, 0.2)
        fault.inject(env)
        fault.heal(env)
        assert all(controller.restart_count >= 1
                   for controller in manager.controllers)

    def test_csi_rpc_flake_arms_and_clears_the_injector(self):
        env = build_chaos_environment(seed=5)
        injector = env.system.replication_context.rpc.injector
        fault = CsiRpcFlake(0.1, 0.2, timeout_probability=0.5,
                            effect_probability=0.7)
        fault.inject(env)
        assert injector.timeout_probability == 0.5
        assert injector.effect_probability == 0.7
        fault.heal(env)
        assert injector.timeout_probability == 0.0

    def test_csi_rpc_flake_validates_probabilities(self):
        with pytest.raises(ValueError):
            CsiRpcFlake(0.1, 0.2, timeout_probability=2.0)

    def test_watch_drop_is_a_point_event(self):
        fault = WatchDrop(0.3, duration=5.0)
        assert fault.duration == 0.0  # severing a stream is instantaneous
        env = build_chaos_environment(seed=5)
        detail = fault.inject(env)
        assert "severed" in detail


class TestControlPreset:
    def test_plan_includes_every_required_kind(self):
        env = build_chaos_environment(seed=13)
        plan = build_plan(env.sim, CONTROL)
        kinds = {fault.kind for fault in plan.faults}
        assert set(CONTROL.required_kinds) <= kinds

    def test_plan_is_seed_deterministic(self):
        plans = []
        for _ in range(2):
            env = build_chaos_environment(seed=13)
            plans.append(build_plan(env.sim, PRESETS["control"]))
        assert plans[0].describe() == plans[1].describe()

    def test_control_only_draws_control_kinds(self):
        control_kinds = {kind for kind, _weight in CONTROL.kinds}
        env = build_chaos_environment(seed=13)
        plan = build_plan(env.sim, CONTROL)
        assert {fault.kind for fault in plan.faults} <= control_kinds


class TestControlCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(seed=7, preset="control")

    def test_passes_end_to_end(self, report):
        assert report.passed
        assert report.violations == []
        assert report.converged
        assert report.final_entry_lag == 0

    def test_failover_still_consistent_after_the_storm(self, report):
        assert report.failover_checked
        assert report.failover_consistent
        assert report.lost_committed_orders == 0

    def test_control_faults_actually_fired(self, report):
        kinds = {event.kind for event in report.timeline}
        assert set(CONTROL.required_kinds) <= kinds
        assert report.counters["api_faults_injected_total"] >= 1
        assert report.counters["controller_restarts_total"] >= 1

    def test_business_made_progress_through_the_storm(self, report):
        assert report.orders_completed > 0

    def test_render_is_presentable(self, report):
        text = report.render()
        assert "chaos campaign 'control' seed=7: PASS" in text
        assert "digest:" in text


class TestControlAcceptance:
    """Acceptance bar: the control campaign is green across >= 5 seeds
    and every seed's report digest is reproducible bit for bit."""

    SEEDS = (3, 7, 11, 19, 23)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_green_and_deterministic(self, seed):
        first = run_campaign(seed=seed, preset="control",
                             verify_failover=False)
        second = run_campaign(seed=seed, preset="control",
                              verify_failover=False)
        assert first.passed, first.violations
        assert first.digest == second.digest
        assert first.timeline == second.timeline
        assert first.counters == second.counters


class TestConvergenceInvariants:
    def test_engine_waits_for_cr_to_be_paired_again(self):
        """An outage that spans the whole fault window still converges:
        the engine's convergence gate now includes the control plane, so
        a PASS certifies the CR returned to Paired."""
        env = build_chaos_environment(seed=31)
        plan = FaultPlan(
            name="outage-only", fault_window=0.8, converge_timeout=5.0,
            faults=(ApiServerOutage(0.05, 0.6),
                    ControllerCrash(0.10, 0.5)))
        report = ChaosEngine(env, plan).run(verify_failover=False)
        assert report.passed, report.violations
        names = {violation.invariant for violation in report.violations}
        assert "reconcile-convergence" not in names
        assert "exactly-once-pairing" not in names
