"""Unit tests of the fault catalog and the integrity/repair pipeline.

The first half drives the ADC integrity machinery directly (wire
corruption, torn journal writes, overflow during resync) on the small
two-site rig from the storage tests; the second half exercises the
:class:`Fault` objects against a full chaos environment, including the
overlap semantics of their heal hooks.
"""

import dataclasses

import pytest

from repro.chaos import (ArrayCrash, JournalCorruption, JournalSqueeze,
                         LinkPartition, SlowDisk, WireCorruption,
                         build_chaos_environment)
from repro.errors import StorageError
from repro.storage import PairState
from tests.storage.conftest import build_two_site, fast_adc, run
from tests.storage.test_adc import make_async_pair


def corrupt_first_entry(group, state):
    """Install a wire injector that corrupts exactly one entry."""

    def injector(entry):
        if state["corrupted"] is None:
            payload = entry.payload or b"\x00"
            mutated = bytes([payload[0] ^ 0xFF]) + payload[1:]
            state["corrupted"] = mutated
            # checksum left stale: the signature of in-flight bit rot
            return dataclasses.replace(entry, payload=mutated)
        return entry

    group.install_wire_injector(injector)


class TestWireIntegrity:
    def test_corruption_detected_quarantined_and_repaired(self, sim):
        site = build_two_site(sim)
        pvol, svol = make_async_pair(site)
        group = site.main.journal_groups["jg-0"]
        state = {"corrupted": None}
        corrupt_first_entry(group, state)

        run(sim, site.main.host_write(pvol.volume_id, 0, b"good-data"))
        sim.run(until=sim.now + 2.0)

        assert group.corruptions_wire.value == 1
        assert len(group.quarantine) == 1
        assert group.repair_resyncs.value >= 1
        assert group.pairs["pair-0"].state is PairState.PAIR
        # the pristine payload made it; the corrupted one never did
        assert svol.peek(0).payload == b"good-data"
        applied = {value.payload for value in svol.block_map().values()}
        assert state["corrupted"] not in applied

    def test_without_auto_repair_stays_suspended(self, sim):
        site = build_two_site(sim, adc=fast_adc(auto_repair=False))
        pvol, svol = make_async_pair(site)
        group = site.main.journal_groups["jg-0"]
        corrupt_first_entry(group, {"corrupted": None})

        run(sim, site.main.host_write(pvol.volume_id, 0, b"good-data"))
        sim.run(until=sim.now + 1.0)

        assert group.corruptions_wire.value == 1
        assert group.suspended
        assert group.pairs["pair-0"].state is PairState.PSUE
        assert svol.peek(0) is None
        # a manual resync (the operator's `pairresync`) recovers
        run(sim, group.resync())
        sim.run(until=sim.now + 1.0)
        assert group.pairs["pair-0"].state is PairState.PAIR
        assert svol.peek(0).payload == b"good-data"

    def test_verify_disabled_lets_corruption_through(self, sim):
        """Negative control: the CRC check is what stops the rot."""
        site = build_two_site(sim, adc=fast_adc(verify_integrity=False))
        pvol, svol = make_async_pair(site)
        group = site.main.journal_groups["jg-0"]
        state = {"corrupted": None}
        corrupt_first_entry(group, state)

        run(sim, site.main.host_write(pvol.volume_id, 0, b"good-data"))
        sim.run(until=sim.now + 1.0)

        assert group.corruptions_wire.value == 0
        assert svol.peek(0).payload == state["corrupted"]


class TestJournalIntegrity:
    def test_torn_backup_entry_detected_at_restore(self, sim):
        site = build_two_site(sim)
        pvol, svol = make_async_pair(site)
        group = site.main.journal_groups["jg-0"]

        # hold the restore loop so the entry is parked in the backup
        # journal when the torn write hits it
        group.quiesce_restore()
        run(sim, site.main.host_write(pvol.volume_id, 3, b"payload"))
        sim.run(until=sim.now + 0.5)
        assert len(group.backup_journal) == 1
        corrupted = group.backup_journal.corrupt_entry(0)
        assert corrupted is not None
        group.resume_restore()
        sim.run(until=sim.now + 2.0)

        assert group.corruptions_journal.value == 1
        assert group.repair_resyncs.value >= 1
        assert group.pairs["pair-0"].state is PairState.PAIR
        assert svol.peek(3).payload == b"payload"
        applied = {value.payload for value in svol.block_map().values()}
        assert corrupted.payload not in applied


class TestResyncOverflow:
    def test_resuspension_mid_resync_loses_no_dirty_blocks(self, sim):
        """Regression: a resync cut short by a second overflow must
        re-mark the unprocessed remainder of the dirty set."""
        site = build_two_site(sim, adc=fast_adc(auto_repair=False))
        pvol = site.main.create_volume(site.main_pool_id, 256)
        svol = site.backup.create_volume(site.backup_pool_id, 256)
        main_jnl = site.main.create_journal(site.main_pool_id, 5)
        backup_jnl = site.backup.create_journal(site.backup_pool_id, 1000)
        site.main.create_journal_group(
            "jg-tiny", main_jnl.journal_id, site.backup,
            backup_jnl.journal_id, site.link)
        pair = site.main.create_async_pair(
            "pair-tiny", "jg-tiny", pvol.volume_id, site.backup,
            svol.volume_id)
        group = site.main.journal_groups["jg-tiny"]
        sim.run(until=sim.now + 0.1)
        assert pair.state is PairState.PAIR

        group.stop_transfer()  # nothing drains: overflow is certain

        def writer():
            for block in range(20):
                yield from site.main.host_write(
                    pvol.volume_id, block, b"blk%02d" % block)

        run(sim, writer())
        assert group.suspended
        assert pair.state is PairState.PSUE
        written = {(pvol.volume_id, block) for block in range(20)}

        def covered():
            journaled = {(entry.volume_id, entry.block)
                         for entry in group.main_journal.peek_batch(10**6)}
            return journaled | set(pair.dirty_blocks)

        assert covered() >= written
        # give the journal a little headroom: the resync re-journals a
        # few blocks, overflows again and must re-suspend mid-loop
        group.main_journal.capacity_entries += 5
        run(sim, group.resync())
        assert group.suspended  # suspended again (journal refilled)
        assert covered() >= written  # the consumed dirty set survived

        # full heal: real capacity, pipelines restarted, repair driven
        group.main_journal.capacity_entries = 10_000
        group.restart()
        run(sim, group.resync())
        sim.run(until=sim.now + 2.0)
        assert not group.suspended
        assert pair.state is PairState.PAIR
        assert svol.block_map() == pvol.block_map()


class TestFaultObjects:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkPartition(-0.1)
        with pytest.raises(ValueError):
            LinkPartition(0.1, -0.5)
        with pytest.raises(ValueError):
            JournalSqueeze(0.1, 0.1, slack=0)
        with pytest.raises(ValueError):
            SlowDisk(0.1, 0.1, factor=0.5)
        with pytest.raises(ValueError):
            WireCorruption(0.1, 0.1, probability=0.0)

    def test_journal_squeeze_overlap_heals_to_original(self):
        env = build_chaos_environment(seed=5)
        journal = env.group.main_journal
        original = journal.capacity_entries
        first = JournalSqueeze(0.0, 0.1)
        second = JournalSqueeze(0.0, 0.1)
        first.inject(env)
        second.inject(env)  # saves the already-squeezed capacity
        assert journal.capacity_entries < original
        first.heal(env)
        second.heal(env)
        assert journal.capacity_entries == original

    def test_slow_disk_overlap_heals_to_nominal(self):
        env = build_chaos_environment(seed=5)
        array = env.system.main.array
        volume_id = sorted(env.business.volume_ids.values())[0]
        volume = array.get_volume(volume_id)
        nominal = volume.media
        first = SlowDisk(0.0, 0.1, factor=10.0)
        second = SlowDisk(0.0, 0.1, factor=10.0)
        first.inject(env)
        second.inject(env)  # saves the already-inflated profile
        assert volume.media.write_latency == pytest.approx(
            nominal.write_latency * 100.0)
        first.heal(env)
        second.heal(env)
        assert volume.media.read_latency == nominal.read_latency
        assert volume.media.write_latency == nominal.write_latency
        assert volume.media.cow_copy_latency == nominal.cow_copy_latency

    def test_link_partition_lag_converges_after_heal(self):
        env = build_chaos_environment(seed=5)
        sim, group = env.sim, env.group
        fault = LinkPartition(0.0, 0.1)
        fault.inject(env)
        volume_id = sorted(env.business.volume_ids.values())[0]

        def writer():
            for block in range(8):
                yield from env.system.main.array.host_write(
                    volume_id, block, b"part%d" % block)

        sim.run_until_complete(sim.spawn(writer()))
        sim.run(until=sim.now + 0.2)
        assert group.entry_lag > 0 or group.suspended
        fault.heal(env)
        sim.run(until=sim.now + 2.0)
        assert not group.suspended
        assert group.entry_lag == 0

    def test_array_crash_rejects_io_until_healed(self):
        env = build_chaos_environment(seed=5)
        sim = env.sim
        volume_id = sorted(env.business.volume_ids.values())[0]
        fault = ArrayCrash(0.0, 0.1)
        assert fault.local
        fault.inject(env)
        with pytest.raises(StorageError):
            sim.run_until_complete(sim.spawn(
                env.system.main.array.host_write(volume_id, 0, b"x")))
        fault.heal(env)
        sim.run_until_complete(sim.spawn(
            env.system.main.array.host_write(volume_id, 0, b"back")))
        sim.run(until=sim.now + 2.0)
        assert not env.group.suspended
        assert env.group.entry_lag == 0

    def test_corruption_faults_register_and_never_leak(self):
        env = build_chaos_environment(seed=5)
        sim, group = env.sim, env.group
        volume_id = sorted(env.business.volume_ids.values())[0]
        fault = WireCorruption(0.0, 0.2, probability=1.0)
        fault.inject(env)

        def writer():
            for block in range(6):
                yield from env.system.main.array.host_write(
                    volume_id, block, b"wire%d" % block)

        sim.run_until_complete(sim.spawn(writer()))
        sim.run(until=sim.now + 0.2)
        fault.heal(env)
        sim.run(until=sim.now + 3.0)

        assert env.corrupted_payloads
        assert group.corruptions_wire.value >= 1
        assert not group.suspended and group.entry_lag == 0
        for pair in group.pairs.values():
            for value in pair.svol.block_map().values():
                assert value.payload not in env.corrupted_payloads

    def test_journal_corruption_targets_backup_then_main(self):
        env = build_chaos_environment(seed=5)
        sim, group = env.sim, env.group
        volume_id = sorted(env.business.volume_ids.values())[0]
        group.quiesce_restore()
        sim.run_until_complete(sim.spawn(
            env.system.main.array.host_write(volume_id, 0, b"torn-me")))
        sim.run(until=sim.now + 0.3)
        assert len(group.backup_journal) >= 1
        fault = JournalCorruption(0.0)
        detail = fault.inject(env)
        assert "backup journal" in detail
        group.resume_restore()
        sim.run(until=sim.now + 2.0)

        assert env.corrupted_payloads
        assert group.corruptions_journal.value >= 1
        assert not group.suspended and group.entry_lag == 0
        for pair in group.pairs.values():
            for value in pair.svol.block_map().values():
                assert value.payload not in env.corrupted_payloads
