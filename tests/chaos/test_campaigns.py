"""End-to-end chaos campaigns: determinism, presets, hand-built plans.

These run real (small) campaigns — a full quick campaign costs about a
second of wall clock — so the acceptance criteria of the chaos engine
are checked for real: corruption detected, repair converging, failover
consistent, and byte-identical reports for identical seeds.
"""

import pytest

from repro.chaos import (ChaosEngine, FaultPlan, LinkPartition,
                         WireCorruption, build_chaos_environment,
                         build_plan, run_campaign)
from repro.chaos.plan import PRESETS


def detections(report):
    return sum(value for key, value in report.counters.items()
               if "detected" in key)


class TestQuickCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(seed=7, preset="quick")

    def test_passes_end_to_end(self, report):
        assert report.passed
        assert report.violations == []
        assert report.converged
        assert report.final_entry_lag == 0

    def test_failover_still_consistent_after_the_storm(self, report):
        assert report.failover_checked
        assert report.failover_consistent
        assert report.lost_committed_orders == 0

    def test_corruption_was_injected_and_caught(self, report):
        # quick always includes wire + journal corruption faults
        assert report.counters["corrupted_payloads_injected"] >= 1
        assert detections(report) >= 1
        assert report.counters["repair_resyncs_total"] >= 1

    def test_business_made_progress_through_the_storm(self, report):
        assert report.orders_completed > 0

    def test_render_is_presentable(self, report):
        text = report.render()
        assert "chaos campaign 'quick' seed=7: PASS" in text
        assert "fault timeline" in text
        assert "digest:" in text


class TestCoalescingCampaign:
    """The quick storm with transfer-side coalescing enabled.

    Coalescing interacts with exactly the machinery chaos stresses —
    partial batches, quarantined entries, resync — so the full quick
    campaign (corruption, partition, failover verification) must hold
    with ``coalesce_overwrites=True`` just as it does without.
    """

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(
            seed=7, preset="quick",
            adc_overrides=dict(coalesce_overwrites=True))

    def test_passes_end_to_end(self, report):
        assert report.passed
        assert report.violations == []
        assert report.converged
        assert report.final_entry_lag == 0

    def test_failover_still_consistent(self, report):
        assert report.failover_checked
        assert report.failover_consistent
        assert report.lost_committed_orders == 0

    def test_corruption_still_detected(self, report):
        assert report.counters["corrupted_payloads_injected"] >= 1
        assert detections(report) >= 1


class TestPipelinedCampaign:
    """The quick storm with the transfer window open.

    Pipelining keeps several batches in flight across exactly the
    faults chaos throws at the wire — partitions under in-flight
    shipments, corrupted entries mid-window, journal squeezes — so the
    full quick campaign must hold with ``transfer_window=4`` just as
    it does stop-and-wait, and stay seed-deterministic.
    """

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(
            seed=7, preset="quick",
            adc_overrides=dict(transfer_window=4))

    def test_passes_end_to_end(self, report):
        assert report.passed
        assert report.violations == []
        assert report.converged
        assert report.final_entry_lag == 0

    def test_failover_still_consistent(self, report):
        assert report.failover_checked
        assert report.failover_consistent
        assert report.lost_committed_orders == 0

    def test_corruption_still_detected(self, report):
        assert report.counters["corrupted_payloads_injected"] >= 1
        assert detections(report) >= 1

    def test_windowed_run_is_deterministic(self, report):
        again = run_campaign(seed=7, preset="quick",
                             adc_overrides=dict(transfer_window=4))
        assert again.digest == report.digest
        assert again.timeline == report.timeline
        assert again.counters == report.counters


class TestLanedCampaign:
    """The quick storm with dependency-aware restore apply lanes.

    The lane scheduler sits under exactly the machinery chaos
    stresses — quarantined entries mid-window, partitions between
    windows, targeted repair resync — so the full quick campaign must
    hold with ``apply_lanes=4`` just as it does serially, stay
    seed-deterministic, and export the lane counters.
    """

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(
            seed=7, preset="quick",
            adc_overrides=dict(apply_lanes=4))

    def test_passes_end_to_end(self, report):
        assert report.passed
        assert report.violations == []
        assert report.converged
        assert report.final_entry_lag == 0

    def test_failover_still_consistent(self, report):
        assert report.failover_checked
        assert report.failover_consistent
        assert report.lost_committed_orders == 0

    def test_corruption_still_detected(self, report):
        assert report.counters["corrupted_payloads_injected"] >= 1
        assert detections(report) >= 1

    def test_lane_counters_exported(self, report):
        assert report.counters["restore_lanes"] == 4
        assert report.counters["restore_lane_conflicts_total"] >= 0

    def test_laned_run_is_deterministic(self, report):
        again = run_campaign(seed=7, preset="quick",
                             adc_overrides=dict(apply_lanes=4))
        assert again.digest == report.digest
        assert again.timeline == report.timeline
        assert again.counters == report.counters

    def test_serial_report_has_no_lane_counters(self):
        serial = run_campaign(seed=7, preset="quick")
        assert "restore_lanes" not in serial.counters
        assert "restore_lane_conflicts_total" not in serial.counters


class TestDeterminism:
    def test_same_seed_same_digest(self):
        first = run_campaign(seed=21, preset="quick",
                             verify_failover=False)
        second = run_campaign(seed=21, preset="quick",
                              verify_failover=False)
        assert first.passed and second.passed
        assert first.digest == second.digest
        assert first.timeline == second.timeline
        assert first.counters == second.counters

    def test_same_seed_same_plan(self):
        plans = []
        for _ in range(2):
            env = build_chaos_environment(seed=42)
            plans.append(build_plan(env.sim, PRESETS["quick"]))
        assert plans[0].describe() == plans[1].describe()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign preset"):
            run_campaign(seed=7, preset="hurricane")


class TestHandWrittenPlan:
    def test_engine_runs_an_explicit_schedule(self):
        env = build_chaos_environment(seed=9)
        plan = FaultPlan(
            name="handmade", fault_window=0.6, converge_timeout=3.0,
            faults=(WireCorruption(0.05, 0.2, probability=1.0),
                    LinkPartition(0.30, 0.10)))
        engine = ChaosEngine(env, plan)
        report = engine.run(verify_failover=False)
        assert report.passed
        kinds = [(event.kind, event.action) for event in report.timeline]
        assert ("wire-corruption", "inject") in kinds
        assert ("wire-corruption", "heal") in kinds
        assert ("link-partition", "inject") in kinds
        assert ("link-partition", "heal") in kinds
        assert report.counters[
            "integrity_corruptions_detected_total[wire]"] >= 1
