"""Shared fixtures for chaos-engine tests."""

import pytest

from repro.simulation import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=11)
