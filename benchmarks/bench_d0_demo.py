"""D0 — the full three-step demonstration (§IV, Figs 2-6).

Runs the scripted demonstration — backup configuration, snapshot
development, data analytics — and asserts every transition the paper's
figures show: no PVs at the backup site before the tag and four after
(Fig 3 → Fig 4), a consistent snapshot group under live replication
(Fig 5), a valid analytics report over the snapshots (Fig 6), and a
transaction window that never stops (the title's "no impact on business
processing").
"""

from repro.bench import run_d0_demo


def test_d0_demo(experiment):
    table, facts = experiment(run_d0_demo, seed=2025)
    assert facts["pvs_before"] == 0
    assert facts["pvs_after"] == 4
    assert facts["namespace_state"] == "Protected"
    assert facts["snapshot_consistent"] is True
    assert facts["analytics_orders"] > 0
    assert facts["orders_after_analytics"] > 0
