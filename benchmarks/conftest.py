"""Benchmark harness configuration.

Every benchmark runs one experiment end to end (fresh simulators inside),
prints the result table the paper's narrative predicts, and asserts the
*shape* facts — who wins, by roughly what factor, where behaviour flips.
Absolute numbers are simulator-dependent and not asserted.

Besides the printed table, each experiment drops a machine-readable
``BENCH_<runner>.json`` (columns, rows, notes and the facts dict —
including the ``registry`` sub-dict of telemetry-derived numbers such as
host-write percentiles, max journal entry-lag and transfer-batch
counts).  The output directory defaults to the repository root and can
be redirected with ``REPRO_BENCH_DIR``.
"""

import json
import os
import pathlib

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1,
        help="shard experiment cells across N worker processes for "
             "runners that support it (E1, E7); 0 = one per CPU. "
             "Deterministic merge: tables/facts match --jobs 1.")


@pytest.fixture()
def jobs(request):
    """The ``--jobs`` worker count for cell-sharding experiment runners."""
    return request.config.getoption("--jobs")

#: values that json.dumps cannot express losslessly are stringified
_JSONABLE = (str, int, float, bool, type(None))


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN
        return None
    if isinstance(value, _JSONABLE):
        return value
    return repr(value)


def _bench_dir() -> pathlib.Path:
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured:
        path = pathlib.Path(configured)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return pathlib.Path(__file__).resolve().parent.parent


def emit_bench_json(runner_name: str, table, facts) -> pathlib.Path:
    """Write ``BENCH_<RUNNER>.json`` next to the repo (or REPRO_BENCH_DIR)."""
    name = runner_name.upper().replace("RUN_", "", 1)
    path = _bench_dir() / f"BENCH_{name}.json"
    payload = {
        "experiment": runner_name,
        "title": table.title,
        "columns": list(table.columns),
        "rows": _jsonable(list(table.rows)),
        "notes": list(table.notes),
        "facts": _jsonable(facts),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def record_experiment(benchmark, runner, **kwargs):
    """Run one experiment under pytest-benchmark and print its table.

    The experiment is deterministic, so a single round is measured; the
    benchmark's value is the wall-clock cost of regenerating the table.
    """
    result = {}

    def once():
        table, facts = runner(**kwargs)
        result["table"] = table
        result["facts"] = facts

    benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(result["table"].render())
    emitted = emit_bench_json(runner.__name__, result["table"],
                              result["facts"])
    print(f"[bench json: {emitted}]")
    return result["table"], result["facts"]


@pytest.fixture()
def experiment(benchmark):
    """Fixture: ``experiment(runner, **kwargs) -> (table, facts)``."""
    def runner_fixture(runner, **kwargs):
        return record_experiment(benchmark, runner, **kwargs)

    return runner_fixture
