"""Benchmark harness configuration.

Every benchmark runs one experiment end to end (fresh simulators inside),
prints the result table the paper's narrative predicts, and asserts the
*shape* facts — who wins, by roughly what factor, where behaviour flips.
Absolute numbers are simulator-dependent and not asserted.
"""

import pytest


def record_experiment(benchmark, runner, **kwargs):
    """Run one experiment under pytest-benchmark and print its table.

    The experiment is deterministic, so a single round is measured; the
    benchmark's value is the wall-clock cost of regenerating the table.
    """
    result = {}

    def once():
        table, facts = runner(**kwargs)
        result["table"] = table
        result["facts"] = facts

    benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(result["table"].render())
    return result["table"], result["facts"]


@pytest.fixture()
def experiment(benchmark):
    """Fixture: ``experiment(runner, **kwargs) -> (table, facts)``."""
    def runner_fixture(runner, **kwargs):
        return record_experiment(benchmark, runner, **kwargs)

    return runner_fixture
