"""E1 — "To eliminate system slowdown, asynchronous data copy is
prevalent" (§I, §III-A1).

Regenerates the latency/throughput comparison the paper's motivation
rests on: order-transaction latency for no-backup vs synchronous copy vs
asynchronous copy, swept over the inter-site round-trip time.

Expected shape (paper): ADC latency is flat in RTT and close to the
no-backup floor; SDC latency grows with RTT and its throughput collapses
— the "system slowdown" ADC removes.
"""

from repro.bench import run_e1_slowdown


def test_e1_slowdown(experiment, jobs):
    table, facts = experiment(
        run_e1_slowdown,
        rtt_ms_values=(1.0, 5.0, 10.0, 25.0),
        duration=1.0, clients=4, jobs=jobs)
    # ADC stays within a modest envelope of the no-backup floor ...
    assert facts["adc_overhead_vs_none"] < 1.25, (
        "ADC is supposed to eliminate slowdown; overhead vs no-backup "
        f"was {facts['adc_overhead_vs_none']:.2f}x")
    # ... and is flat in RTT (the ack never crosses the link)
    assert facts["adc_p50_growth_over_rtt"] < 1.1
    # SDC pays the link on every write: grows with RTT ...
    assert facts["sdc_p50_growth_over_rtt"] > 3.0
    # ... and loses to ADC by a large factor at WAN distance
    assert facts["sdc_over_adc_at_max_rtt"] > 5.0
