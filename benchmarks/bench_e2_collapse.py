"""E2 — "the ADC can collapse backup data when applied to enterprise
systems with multiple resources" (§I).

Regenerates the collapse demonstration: disasters are injected at random
instants under concurrent order load, and the backup image's
recoverability is checked for ADC with independent per-volume journals
vs ADC with one consistency group.

Expected shape (paper): without the consistency group a non-trivial
fraction of disaster instants leaves an unrecoverable (collapsed)
backup; with it, every instant recovers consistently.
"""

from repro.bench import run_e2_collapse


def test_e2_collapse(experiment):
    table, facts = experiment(
        run_e2_collapse,
        seeds=tuple(range(1000, 1012)), load_time=0.35, clients=6)
    assert facts["adc-nocg_collapse_rate"] > 0.0, (
        "independent journals never collapsed — the §I failure mode is "
        "not reproducing")
    assert facts["adc-cg_collapse_rate"] == 0.0, (
        "the consistency group must make every disaster instant "
        "recoverable")
