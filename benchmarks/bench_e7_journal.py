"""E7 — ablation of the journal transfer interval (§III-A1).

The ADC's background pipeline has one first-order knob: how often the
journal is shipped to the backup site.  This ablation regenerates the
trade-off curve: foreground order throughput (should not care — the ack
path never waits on the transfer) vs data lost at a disaster (grows with
the interval: everything still journaled at the main site dies with it)
vs peak journal occupancy (capacity planning).

The table also carries the wire cost (transferred KB per run) and two
hotspot ablations: the block-overwrite stream drained with and without
``coalesce_overwrites`` (superseded entries never cross the inter-site
link), and the duplicate-heavy payload profile drained with and without
the wire data-reduction engine (repeated payloads ship as fingerprint
references, the rest compressed — the transferred_kb column shows the
bytes the link physically carried).
"""

from repro.bench import run_e7_journal


def test_e7_journal(experiment, jobs):
    table, facts = experiment(
        run_e7_journal, intervals_ms=(1.0, 5.0, 20.0, 50.0),
        seeds=(700, 701, 702), load_time=0.3, jobs=jobs)
    # the foreground never waits on the transfer: throughput is flat
    assert facts["throughput_spread"] < 1.1
    # data loss at disaster grows with the transfer interval
    assert facts["loss_grows"]
    assert facts["mean_losses"][-1] >= facts["mean_losses"][0]
    # coalescing ablation: overwrite hotspot ships measurably fewer
    # bytes, drops superseded entries, and converges to the same image
    coalesce = facts["coalesce"]
    assert coalesce["images_match"]
    assert coalesce["entries_coalesced_away"] > 0
    assert coalesce["bytes_coalesced"] < coalesce["bytes_plain"]
    assert coalesce["bytes_saved_ratio"] > 0.5
    # reduction ablation: the duplicate-heavy stream ships at least 3x
    # fewer wire bytes with reduction on, and the secondary image is
    # bit-identical either way
    reduction = facts["reduction"]
    assert reduction["images_match"]
    assert reduction["bytes_wire"] * 3 <= reduction["bytes_plain_wire"]
    assert reduction["bytes_wire"] < reduction["bytes_logical"]
