"""E3 — "The automation of the operator removes the laborious tasks to
identify the related data volumes and to configure the ADC" (§II,
§III-B1, Figs 3-4).

Regenerates the automation comparison: user-visible operations and
configuration latency for the namespace operator (one tag) vs the manual
per-volume storage-administration procedure, swept over the number of
volumes in the namespace.

Expected shape (paper): the operator path is a single operation
regardless of namespace size; the manual path grows linearly with the
volume count.
"""

from repro.bench import run_e3_operator


def test_e3_operator(experiment):
    table, facts = experiment(
        run_e3_operator, volume_counts=(2, 4, 8, 16))
    assert all(ops == 1 for ops in facts["nso_ops"]), (
        "the operator path must stay at exactly one user operation "
        "(the tag)")
    manual = facts["manual_ops"]
    assert manual[-1] > manual[0], "manual effort must grow with volumes"
    # linear growth: ~2 array commands per additional volume
    assert manual[-1] >= manual[0] + 2 * (16 - 2)
