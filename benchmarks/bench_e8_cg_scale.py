"""E8 — ablation of consistency-group size (§III-A1).

"The external storage system also provides a consistency group function,
which shares the journal volume with multiple volumes."  This ablation
regenerates the cost curve of that sharing: host-write latency, restore
lag and catch-up time as one journal serves 2 → 16 volumes, against the
same volumes on independent journals.

Expected shape: the *ack path* is unaffected by group size (journal
appends are cheap and per-volume), which is why consistency groups are
free for the business; the *restore pipeline* serialises the group, so
backup-side lag grows with group size — the price of one global order.
"""

from repro.bench import run_e8_cg_scale


def test_e8_cg_scale(experiment):
    table, facts = experiment(
        run_e8_cg_scale, volume_counts=(2, 4, 8, 16), duration=0.5)
    cg_p99 = facts["cg_p99"]
    independent_p99 = facts["independent_p99"]
    # the ack path does not degrade as the group grows
    assert max(cg_p99) <= 2.0 * min(cg_p99)
    # and matches the independent layout (consistency is free up front)
    assert max(cg_p99) <= 2.0 * max(independent_p99)
    # parallel restore closes the serial pipeline's lag gap at scale
    assert facts["cg_parallel_lag"][-1] <= facts["cg_serial_lag"][-1]
