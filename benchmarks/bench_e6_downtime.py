"""E6 — "Data backup is a core technology for improving system
resilience ... recover the backup site under the condition of data
consistency" (§I, §V).

Regenerates the disaster-recovery comparison: recovery success rate,
committed orders lost (RPO) and recovery time (RTO) for synchronous
copy, ADC with consistency group, and ADC without.

Expected shape (paper): SDC loses nothing (at E1's latency price);
ADC + consistency group always recovers with bounded loss; ADC without
a consistency group sometimes cannot recover at all.
"""

from repro.bench import run_e6_downtime


def test_e6_downtime(experiment):
    table, facts = experiment(
        run_e6_downtime, seeds=tuple(range(1000, 1006)), load_time=0.3)
    # SDC: zero RPO, always recovers
    assert facts["sdc_recovered"] == facts["sdc_disasters"]
    assert facts["sdc_max_lost"] == 0
    # ADC+CG: always recovers; loss bounded by the journal lag
    assert facts["adc-cg_recovered"] == facts["adc-cg_disasters"]
    assert facts["adc-cg_max_lost"] >= 0
    # ADC without CG is strictly worse: not always recoverable
    assert facts["adc-nocg_recovered"] <= facts["adc-cg_recovered"]
