"""E5 — "The demonstration system utilizes the snapshot volumes for the
data analytics while data are being copied from the main to the backup
sites" (§II, §IV-D, Fig 6).

Regenerates the analytics-placement comparison: main-site throughput,
replication lag, and analytics-result validity/stability for no
analytics vs analytics over snapshot volumes vs analytics over the live
mirror volumes.

Expected shape (paper): snapshot-based analytics leaves the business and
the replication pipeline undisturbed and returns a valid, repeatable
point-in-time answer; reading the live mirror returns torn, unstable
answers.
"""

from repro.bench import run_e5_analytics


def test_e5_analytics(experiment):
    table, facts = experiment(run_e5_analytics, window=1.0, repeats=3)
    baseline = facts["no-analytics_throughput"]
    # analytics at the backup site never slows the business down
    assert facts["on-snapshots_throughput"] > 0.9 * baseline
    assert facts["on-live-mirror_throughput"] > 0.9 * baseline
    # snapshot answers are valid and repeatable
    assert facts["on-snapshots_valid"] == 3
    assert facts["on-snapshots_stable"] is True
    # live-mirror answers are torn (invalid) and/or unstable
    assert facts["on-live-mirror_valid"] < 3 or \
        facts["on-live-mirror_stable"] is False
