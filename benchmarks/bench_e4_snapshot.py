"""E4 — "The snapshot group technology enables the demonstration system
to retain the snapshot volumes in consistent with the volumes on the
main site" (§III-A2, Fig 5).

Regenerates the snapshot-consistency comparison at the backup site while
the restore pipeline is live: quiesced snapshot groups vs per-volume
snapshots issued as separate console operations.

Expected shape (paper): snapshot groups always freeze a consistent cut;
per-volume snapshots taken at different instants do not.
"""

from repro.bench import run_e4_snapshot


def test_e4_snapshot(experiment):
    table, facts = experiment(
        run_e4_snapshot, seeds=tuple(range(400, 408)), load_time=0.25)
    assert facts["snapshot-group_rate"] == 1.0, (
        "quiesced snapshot groups must always freeze a consistent cut")
    assert facts["per-volume_rate"] < 1.0, (
        "per-volume snapshots under live restore should tear; they "
        "did not, so the baseline lost its point")
