"""P0 — hot-path microbenchmarks (wall-clock, not simulated time).

Unlike E1–E8, which assert the *shape* of simulated behaviour, this
suite times the Python hot paths the replication pipeline runs on:
journal append/drain throughput, kernel event scheduling, the
end-to-end restore drain rate, and one E1 scenario cell as the macro
guard.  The emitted ``BENCH_PERF.json`` is the committed baseline the
CI perf-smoke job gates against (``repro perf --quick --check``).

Absolute numbers are machine-dependent, so the assertions here check
only the schema and sanity of the facts (every metric present,
positive, with an explicit direction) — the regression gate compares
ratios against a same-machine baseline instead.
"""

from repro.bench import run_perf

#: every microbench the suite must report, with its direction
EXPECTED_METRICS = {
    "journal_append": True,
    "journal_drain": True,
    "kernel_events": True,
    "restore_drain": True,
    "snapshot_under_restore": True,
    "host_write_e2e": True,
    "e1_cell": False,
    "transfer_drain": True,
    "transfer_drain_reduced": True,
    "wire_bytes_per_entry": False,
    "initial_copy": True,
}


def test_p0_hotpath(experiment):
    table, facts = experiment(run_perf, quick=True)
    assert facts["mode"] == "quick"
    metrics = facts["metrics"]
    assert set(metrics) == set(EXPECTED_METRICS)
    for name, higher_is_better in EXPECTED_METRICS.items():
        metric = metrics[name]
        assert metric["value"] > 0, name
        assert metric["higher_is_better"] is higher_is_better, name
    # drain must beat append: trimming a retained window has to be
    # cheaper than building it (the O(1)-amortized ring contract)
    assert (metrics["journal_drain"]["value"]
            > metrics["journal_append"]["value"])
